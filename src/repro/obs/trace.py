"""The tracer: nested spans, sampling, ``traceparent`` propagation.

A :class:`Span` is one timed phase of a request — ``trace_id`` (shared by
every span of the request, across processes), ``span_id``, ``parent_id``,
a monotonic start/duration pair, a wall-clock start for cross-process
alignment, a status and free-form attrs.  Spans nest through the context
variable in :mod:`repro.obs.context`, so ``with tracer.start_span(...)``
blocks parent correctly across ``await`` points and (via
:func:`~repro.obs.context.bind_context`) across executor threads.

Sampling happens once, at the root: :meth:`Tracer.start_trace` either
honours the incoming ``traceparent`` header's sampled flag (so a failover
successor joins the router's decision) or rolls the configured sample rate.
An unsampled — or disabled — tracer hands back the shared :data:`NOOP_SPAN`
singleton, and every child ``start_span`` under it short-circuits to the
same object: the sampled-out fast path allocates nothing and does no
bookkeeping, which is what keeps the bench-guarded overhead budget (≤2%)
honest.

Header format (W3C trace-context shaped)::

    traceparent: 00-<32 hex trace id>-<16 hex span id>-<01|00>

Responses from traced servers carry ``x-repro-trace-id`` so callers know
which trace to fetch from ``GET /v1/traces/{trace_id}``.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import context as _context
from repro.obs.export import SpanRing, TraceLog, build_tree

#: The propagation header carried worker-ward by the fleet client.
TRACEPARENT_HEADER = "traceparent"

#: The response header naming the trace a request produced.
TRACE_ID_HEADER = "x-repro-trace-id"

_FLAG_SAMPLED = "01"
_FLAG_UNSAMPLED = "00"


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def format_traceparent(trace_id: str, span_id: str, *, sampled: bool = True) -> str:
    """The outgoing header value for a span (version 00)."""
    flag = _FLAG_SAMPLED if sampled else _FLAG_UNSAMPLED
    return f"00-{trace_id}-{span_id}-{flag}"


def parse_traceparent(header: str) -> Optional[Tuple[str, str, bool]]:
    """``(trace_id, parent_span_id, sampled)`` or ``None`` if malformed."""
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != "00" or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return trace_id, span_id, flags == _FLAG_SAMPLED


class NoopSpan:
    """The shared do-nothing span: the sampled-out fast path.

    One module-level instance serves every untraced call site; entering,
    exiting and attribute updates are all no-ops and allocate nothing.
    """

    __slots__ = ()

    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    sampled = False
    duration: Optional[float] = None

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set_attr(self, _key: str, _value: object) -> "NoopSpan":
        return self

    def set_status(self, _status: str, error: Optional[str] = None) -> "NoopSpan":
        return self

    def child_record(self, _name: str, **_kwargs: object) -> None:
        return None

    def end(self) -> None:
        return None

    def discard(self) -> None:
        return None

    def traceparent(self) -> Optional[str]:
        return None


#: The singleton every sampled-out ``start_span``/``start_trace`` returns.
NOOP_SPAN = NoopSpan()


class Span:
    """One live, sampled span.  Use as a context manager."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "root",
        "start",
        "wall",
        "duration",
        "status",
        "error",
        "attrs",
        "_tracer",
        "_token",
    )

    sampled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict[str, object]] = None,
        *,
        root: bool = False,
    ):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.root = root
        self.start = time.perf_counter()
        self.wall = time.time()
        self.duration: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self._token: Optional[object] = None

    def __enter__(self) -> "Span":
        self._token = _context.attach(self)
        return self

    def __exit__(self, exc_type: Optional[type], exc: object, tb: object) -> bool:
        if exc_type is not None and self.status == "ok":
            self.set_status("error", error=exc_type.__name__)
        self.end()
        return False

    def __bool__(self) -> bool:
        return True

    def set_attr(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self

    def set_status(self, status: str, error: Optional[str] = None) -> "Span":
        self.status = status
        if error is not None:
            self.error = error
        return self

    def child_record(
        self,
        name: str,
        *,
        start: Optional[float] = None,
        duration: float = 0.0,
        **attrs: object,
    ) -> None:
        """Record an already-finished child (timed before the span existed).

        ``start`` is a ``time.perf_counter()`` reading; the wall start is
        back-dated by the same offset so waterfalls line up.
        """
        if self._tracer is None:
            return
        child = Span(self._tracer, name, self.trace_id, self.span_id, attrs)
        if start is not None:
            offset = child.start - start
            child.start = start
            child.wall -= offset
        child.duration = duration
        self._tracer._record(child)

    def discard(self) -> None:
        """Drop the span without recording it (a probe that found nothing
        to time — e.g. a pool lookup that hit).  Safe inside ``with``."""
        if self._token is not None:
            _context.detach(self._token)
            self._token = None
        self._tracer = None

    def end(self) -> None:
        """Finish the span once; later calls are ignored."""
        if self._tracer is None:
            return
        if self.duration is None:
            self.duration = time.perf_counter() - self.start
        if self._token is not None:
            _context.detach(self._token)
            self._token = None
        tracer, self._tracer = self._tracer, None
        tracer._record(self)

    def traceparent(self) -> str:
        """The header value a downstream hop should carry."""
        return format_traceparent(self.trace_id, self.span_id, sampled=True)

    def to_record(self, service: str) -> Dict[str, object]:
        return {
            "name": self.name,
            "service": service,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "root": self.root,
            "start": self.start,
            "wall": self.wall,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
        }


class Tracer:
    """Produces spans, applies sampling, and fans finished spans out.

    Parameters
    ----------
    service:
        Stamped on every record (``router``, ``worker``, ...) so merged
        multi-process traces stay attributable.
    enabled:
        ``False`` turns every ``start_*`` into :data:`NOOP_SPAN` — the
        library default, so untraced embedders pay nothing.
    sample_rate:
        Probability a *new* root is sampled.  An incoming ``traceparent``
        overrides the roll: the upstream decision wins, so one trace never
        ends up half-sampled across the fleet.
    ring_capacity / trace_log / trace_log_max_bytes:
        Retention knobs — see :mod:`repro.obs.export`.
    slow_threshold / slow_log / on_slow:
        Root spans at least ``slow_threshold`` seconds long get their full
        span tree written to ``slow_log`` (JSONL) and/or passed to the
        ``on_slow`` hook.
    """

    def __init__(
        self,
        *,
        service: str = "repro",
        enabled: bool = True,
        sample_rate: float = 1.0,
        ring_capacity: int = 2048,
        trace_log: Optional[str] = None,
        trace_log_max_bytes: int = 16 << 20,
        slow_threshold: Optional[float] = None,
        slow_log: Optional[str] = None,
        on_slow: Optional[Callable[[Dict[str, object]], None]] = None,
    ):
        self.service = service
        self._enabled = enabled
        self._sample_rate = max(0.0, min(1.0, sample_rate))
        self.ring = SpanRing(ring_capacity)
        self._log = (
            TraceLog(trace_log, max_bytes=trace_log_max_bytes) if trace_log else None
        )
        self._slow_threshold = slow_threshold
        self._slow_log = (
            TraceLog(slow_log, max_bytes=trace_log_max_bytes) if slow_log else None
        )
        self._on_slow = on_slow
        self._random = random.Random(os.urandom(8))
        self.slow_traces = 0

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    def start_trace(
        self,
        name: str,
        *,
        traceparent: Optional[str] = None,
        **attrs: object,
    ) -> "Span | NoopSpan":
        """A root span: new trace, or a continuation of ``traceparent``."""
        if not self._enabled:
            return NOOP_SPAN
        trace_id: Optional[str] = None
        parent_id: Optional[str] = None
        sampled: Optional[bool] = None
        if traceparent:
            parsed = parse_traceparent(traceparent)
            if parsed is not None:
                trace_id, parent_id, sampled = parsed
        if sampled is None:
            sampled = (
                self._sample_rate >= 1.0
                or self._random.random() < self._sample_rate
            )
        if not sampled:
            return NOOP_SPAN
        return Span(
            self,
            name,
            trace_id or _new_trace_id(),
            parent_id,
            attrs or None,
            root=True,
        )

    def start_span(self, name: str, **attrs: object) -> "Span | NoopSpan":
        """A child of the context's current span (noop outside a trace)."""
        parent = _context.current_span()
        if parent is None or not parent.sampled or not self._enabled:
            return NOOP_SPAN
        return Span(self, name, parent.trace_id, parent.span_id, attrs or None)

    # ------------------------------------------------------------------ #
    def _record(self, span: Span) -> None:
        record = span.to_record(self.service)
        self.ring.append(record)
        if self._log is not None:
            self._log.write(record)
        if (
            span.root
            and self._slow_threshold is not None
            and span.duration is not None
            and span.duration >= self._slow_threshold
        ):
            self._emit_slow(span, record)

    def _emit_slow(self, span: Span, record: Dict[str, object]) -> None:
        self.slow_traces += 1
        spans = self.ring.trace(span.trace_id)
        document = {
            "slow": True,
            "trace_id": span.trace_id,
            "name": span.name,
            "duration": span.duration,
            "threshold": self._slow_threshold,
            "spans": build_tree(spans),
        }
        if self._slow_log is not None:
            self._slow_log.write(document)
        if self._on_slow is not None:
            try:
                self._on_slow(document)
            except Exception:  # noqa: BLE001 - a broken slow hook must not fail requests
                pass

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
        if self._slow_log is not None:
            self._slow_log.close()


__all__ = [
    "NOOP_SPAN",
    "NoopSpan",
    "Span",
    "TRACEPARENT_HEADER",
    "TRACE_ID_HEADER",
    "Tracer",
    "format_traceparent",
    "parse_traceparent",
]
