"""Structured event logging for the serving CLIs.

One :class:`EventLog` replaces the ad-hoc ``print(..., file=sys.stderr)``
calls on the serving paths.  Every event is a name plus key=value fields;
the active trace id (when the emitting context is inside a span) is
stitched in automatically, so a grep for one trace id crosses the log and
the trace store.  Two formats:

* ``plain`` (default) — ``[repro-serve] listening host=127.0.0.1 port=8080``;
* ``json`` — one JSON object per line
  (``{"ts": ..., "service": ..., "event": ..., "trace_id": ..., ...}``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Optional

from repro.obs.context import current_trace_id

FORMATS = ("plain", "json")


class EventLog:
    """A line-per-event logger with plain-text and JSON renderings."""

    def __init__(
        self,
        service: str,
        *,
        fmt: str = "plain",
        stream: Optional[IO[str]] = None,
    ):
        if fmt not in FORMATS:
            raise ValueError(f"unknown log format {fmt!r} (choose from {FORMATS})")
        self.service = service
        self.fmt = fmt
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def event(self, event: str, **fields: object) -> None:
        """Emit one event; ``trace_id`` is stitched in when one is active."""
        trace_id = current_trace_id()
        if self.fmt == "json":
            document = {"ts": time.time(), "service": self.service, "event": event}
            if trace_id is not None:
                document["trace_id"] = trace_id
            document.update(fields)
            line = json.dumps(document, separators=(",", ":"), sort_keys=True)
        else:
            parts = [f"[{self.service}]", event]
            if trace_id is not None:
                parts.append(f"trace_id={trace_id}")
            parts.extend(f"{key}={value}" for key, value in fields.items())
            line = " ".join(parts)
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass  # a closed/broken log stream must never fail serving


__all__ = ["FORMATS", "EventLog"]
