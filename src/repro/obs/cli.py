"""Shared observability wiring of the serving CLIs.

``repro-serve`` and ``repro-fleet`` expose the same tracing and logging
knobs; this module owns the argparse group, its validation, and the
:func:`configure_observability` call that turns parsed arguments into the
process-global tracer plus an :class:`~repro.obs.logs.EventLog`.  Keeping
it in one place means the two commands cannot drift apart.

Serving processes trace by default (``--trace-sample 1.0``): traces feed
``GET /v1/traces`` and the waterfall renderer with zero setup, and the
sampled-out fast path is cheap enough (bench-guarded ≤2%) that turning it
down is a tuning decision, not a requirement.  Library embedders are the
opposite — the module-level tracer starts disabled there.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional

from repro import obs
from repro.obs.logs import FORMATS, EventLog


def add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``--trace-*`` / ``--log-format`` options."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="fraction of new root requests traced, 0..1; 0 disables tracing "
        "(default: 1.0; forwarded trace headers override the roll)",
    )
    group.add_argument(
        "--trace-ring", type=int, default=2048, metavar="SPANS",
        help="finished spans kept in memory behind GET /v1/traces "
        "(default: 2048)",
    )
    group.add_argument(
        "--trace-log", type=Path, default=None, metavar="FILE",
        help="append every finished span to FILE as JSONL (rotated once to "
        "FILE.1 past --trace-log-max-bytes); repro-trace renders it",
    )
    group.add_argument(
        "--trace-log-max-bytes", type=int, default=16 * 2 ** 20, metavar="N",
        help="rotation threshold of --trace-log in bytes (default: 16 MiB)",
    )
    group.add_argument(
        "--trace-slow-threshold", type=float, default=None, metavar="SECONDS",
        help="capture the full span tree of any request at least this slow "
        "(to --trace-slow-log when given, else the event log)",
    )
    group.add_argument(
        "--trace-slow-log", type=Path, default=None, metavar="FILE",
        help="JSONL sink for slow-request span trees (default: derived from "
        "--trace-log as FILE.slow when that is set)",
    )
    group.add_argument(
        "--log-format", choices=FORMATS, default="plain",
        help="event log rendering on stderr: plain or json (default: plain)",
    )


def validate_observability(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    if not 0.0 <= args.trace_sample <= 1.0:
        parser.error("--trace-sample must be between 0 and 1")
    if args.trace_ring < 1:
        parser.error("--trace-ring must be at least 1")
    if args.trace_log_max_bytes < 4096:
        parser.error("--trace-log-max-bytes must be at least 4096")
    if args.trace_slow_threshold is not None and args.trace_slow_threshold < 0:
        parser.error("--trace-slow-threshold must be at least 0")


def configure_observability(
    args: argparse.Namespace, service: str
) -> EventLog:
    """Configure the global tracer from parsed args; returns the event log.

    ``service`` stamps both the spans and the log lines (``worker`` /
    ``router``), so merged fleet traces and interleaved logs stay
    attributable.  Slow traces always leave a log event; the full span
    tree additionally lands in the slow JSONL sink when one is resolvable.
    """
    log = EventLog(service, fmt=args.log_format)
    slow_log: Optional[Path] = args.trace_slow_log
    if slow_log is None and args.trace_log is not None:
        slow_log = args.trace_log.with_name(args.trace_log.name + ".slow")

    def on_slow(document: dict) -> None:
        log.event(
            "trace.slow",
            trace_id=document.get("trace_id"),
            name=document.get("name"),
            duration=round(float(document.get("duration") or 0.0), 6),
            threshold=document.get("threshold"),
        )

    obs.configure(
        service=service,
        enabled=args.trace_sample > 0.0,
        sample_rate=args.trace_sample,
        ring_capacity=args.trace_ring,
        trace_log=str(args.trace_log) if args.trace_log else None,
        trace_log_max_bytes=args.trace_log_max_bytes,
        slow_threshold=args.trace_slow_threshold,
        slow_log=str(slow_log) if slow_log else None,
        on_slow=on_slow if args.trace_slow_threshold is not None else None,
    )
    return log


__all__ = [
    "add_observability_arguments",
    "configure_observability",
    "validate_observability",
]
