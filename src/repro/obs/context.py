"""Trace-context propagation: one ``ContextVar`` plus the executor bridge.

The current span travels with :mod:`contextvars`, so nested ``with
tracer.start_span(...)`` blocks parent correctly across ``await`` points for
free.  What does *not* come for free is the thread hop:
``loop.run_in_executor`` and ``ThreadPoolExecutor.submit`` both run the
callable in the worker thread's own (empty) context, dropping the active
span.  :func:`bind_context` closes that gap — it snapshots the submitting
context and replays the callable inside it, which is how the HTTP bridge
(``serve/http/bridge.py``) and the :class:`~repro.serve.DiscoveryService`
thread pool carry the request's trace across their executors.
"""

from __future__ import annotations

import contextvars
from typing import Any, Callable, Optional

#: The active span of the calling context (``None`` outside any trace).
_CURRENT_SPAN: "contextvars.ContextVar[Optional[object]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[object]:
    """The innermost active span in this context, or ``None``."""
    return _CURRENT_SPAN.get()


def current_trace_id() -> Optional[str]:
    """The active trace id, for stitching into log events (or ``None``)."""
    span = _CURRENT_SPAN.get()
    return getattr(span, "trace_id", None) if span is not None else None


def attach(span: object) -> "contextvars.Token":
    """Make ``span`` the context's current span; returns the reset token."""
    return _CURRENT_SPAN.set(span)


def detach(token: "contextvars.Token") -> None:
    _CURRENT_SPAN.reset(token)


def bind_context(fn: Callable[..., Any]) -> Callable[..., Any]:
    """``fn`` bound to a snapshot of the *calling* context.

    Use at every executor boundary: the returned callable replays ``fn``
    inside the submitting context, so ``current_span()`` (and every other
    context variable) survives the thread hop.
    """
    snapshot = contextvars.copy_context()

    def bound(*args: Any, **kwargs: Any) -> Any:
        return snapshot.run(fn, *args, **kwargs)

    return bound


__all__ = [
    "attach",
    "bind_context",
    "current_span",
    "current_trace_id",
    "detach",
]
