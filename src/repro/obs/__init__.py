"""``repro.obs`` — dependency-free tracing and unified telemetry.

The observability layer under the whole serving stack:

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` with sampling,
  ``traceparent`` propagation and a zero-allocation no-op fast path;
* :mod:`repro.obs.context` — ``contextvars`` propagation, including the
  :func:`bind_context` bridge across executor thread hops;
* :mod:`repro.obs.names` — the span-name registry (the ``REP009``-enforced
  single source of truth, like ``FAULT_POINTS``);
* :mod:`repro.obs.export` — ring buffer, JSONL trace log, slow-trace trees;
* :mod:`repro.obs.render` — waterfalls and the ``repro-trace`` script;
* :mod:`repro.obs.promfmt` — the one shared Prometheus exposition path;
* :mod:`repro.obs.logs` — structured (plain/JSON) event logging.

Process-wide wiring goes through the module-level tracer: serving CLIs call
:func:`configure` once at boot; instrumented modules call :func:`get_tracer`
per use, so tests can swap tracers at any time.  The default tracer is
disabled — library embedders pay nothing until they opt in.
"""

from __future__ import annotations

from repro.obs.context import (
    bind_context,
    current_span,
    current_trace_id,
)
from repro.obs.logs import EventLog
from repro.obs.names import (
    SPAN_ENGINE_CHECKPOINT,
    SPAN_ENGINE_LEVEL,
    SPAN_ENGINE_RUN,
    SPAN_ENGINE_WALK,
    SPAN_FLEET_FAILOVER,
    SPAN_FLEET_FORWARD,
    SPAN_FLEET_QUEUE_WAIT,
    SPAN_FLEET_REQUEST,
    SPAN_HTTP_ADMISSION,
    SPAN_HTTP_PARSE,
    SPAN_HTTP_REQUEST,
    SPAN_NAMES,
    SPAN_POOL_ADMIT,
    SPAN_POOL_EVICT,
    SPAN_POOL_SPILL,
    SPAN_PROFILER_BUILD,
    SPAN_SERVICE_EXECUTE,
    SPAN_SERVICE_SUBMIT,
    SPAN_STORE_GET,
    SPAN_STORE_PUT,
    span_layer,
)
from repro.obs.trace import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    TRACEPARENT_HEADER,
    TRACE_ID_HEADER,
    Tracer,
    format_traceparent,
    parse_traceparent,
)

_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until :func:`configure`)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def configure(**kwargs: object) -> Tracer:
    """Build a :class:`Tracer` from keyword knobs and install it."""
    return set_tracer(Tracer(**kwargs))  # type: ignore[arg-type]


def disable() -> Tracer:
    """Install a disabled tracer (the library default); returns it."""
    return set_tracer(Tracer(enabled=False))


__all__ = [
    "EventLog",
    "NOOP_SPAN",
    "NoopSpan",
    "SPAN_NAMES",
    "Span",
    "TRACEPARENT_HEADER",
    "TRACE_ID_HEADER",
    "Tracer",
    "bind_context",
    "configure",
    "current_span",
    "current_trace_id",
    "disable",
    "format_traceparent",
    "get_tracer",
    "parse_traceparent",
    "set_tracer",
    "span_layer",
    "SPAN_ENGINE_CHECKPOINT",
    "SPAN_ENGINE_LEVEL",
    "SPAN_ENGINE_RUN",
    "SPAN_ENGINE_WALK",
    "SPAN_FLEET_FAILOVER",
    "SPAN_FLEET_FORWARD",
    "SPAN_FLEET_QUEUE_WAIT",
    "SPAN_FLEET_REQUEST",
    "SPAN_HTTP_ADMISSION",
    "SPAN_HTTP_PARSE",
    "SPAN_HTTP_REQUEST",
    "SPAN_POOL_ADMIT",
    "SPAN_POOL_EVICT",
    "SPAN_POOL_SPILL",
    "SPAN_PROFILER_BUILD",
    "SPAN_SERVICE_EXECUTE",
    "SPAN_SERVICE_SUBMIT",
    "SPAN_STORE_GET",
    "SPAN_STORE_PUT",
]
