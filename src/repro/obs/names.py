"""The span-name registry: every span the tree ever starts, in one place.

Exactly like :data:`repro.serve.faults.FAULT_POINTS`, these constants are the
single source of truth: instrumentation sites must pass one of these
constants to ``start_span``/``start_trace`` (never an ad-hoc literal), names
must match ``repro.[a-z0-9_.]+``, and the ``REP009`` lint rule enforces both
against this registry.  The segment after ``repro.`` is the *layer* — the
obs-smoke CI gate counts distinct layers under one trace id.
"""

from __future__ import annotations

#: Fleet router layer.
SPAN_FLEET_REQUEST = "repro.fleet.request"
SPAN_FLEET_QUEUE_WAIT = "repro.fleet.queue_wait"
SPAN_FLEET_FORWARD = "repro.fleet.forward"
SPAN_FLEET_FAILOVER = "repro.fleet.failover"

#: Worker HTTP layer.
SPAN_HTTP_REQUEST = "repro.http.request"
SPAN_HTTP_PARSE = "repro.http.parse"
SPAN_HTTP_ADMISSION = "repro.http.admission"

#: Discovery service layer.
SPAN_SERVICE_SUBMIT = "repro.service.submit"
SPAN_SERVICE_EXECUTE = "repro.service.execute"

#: Session pool layer.
SPAN_POOL_ADMIT = "repro.pool.admit"
SPAN_POOL_EVICT = "repro.pool.evict"
SPAN_POOL_SPILL = "repro.pool.spill"

#: Persistent cache store layer.
SPAN_STORE_PUT = "repro.store.put"
SPAN_STORE_GET = "repro.store.get"

#: Profiler (structure-cache) layer.
SPAN_PROFILER_BUILD = "repro.profiler.build"

#: Engine layer.
SPAN_ENGINE_RUN = "repro.engine.run"
SPAN_ENGINE_LEVEL = "repro.engine.level"
SPAN_ENGINE_CHECKPOINT = "repro.engine.checkpoint"
SPAN_ENGINE_WALK = "repro.engine.walk"

#: Every registered span name.  ``REP009`` cross-checks literal
#: ``start_span`` arguments and the DESIGN.md span taxonomy against this.
SPAN_NAMES = (
    SPAN_FLEET_REQUEST,
    SPAN_FLEET_QUEUE_WAIT,
    SPAN_FLEET_FORWARD,
    SPAN_FLEET_FAILOVER,
    SPAN_HTTP_REQUEST,
    SPAN_HTTP_PARSE,
    SPAN_HTTP_ADMISSION,
    SPAN_SERVICE_SUBMIT,
    SPAN_SERVICE_EXECUTE,
    SPAN_POOL_ADMIT,
    SPAN_POOL_EVICT,
    SPAN_POOL_SPILL,
    SPAN_STORE_PUT,
    SPAN_STORE_GET,
    SPAN_PROFILER_BUILD,
    SPAN_ENGINE_RUN,
    SPAN_ENGINE_LEVEL,
    SPAN_ENGINE_CHECKPOINT,
    SPAN_ENGINE_WALK,
)


def span_layer(name: str) -> str:
    """The layer segment of a span name (``repro.http.parse`` → ``http``)."""
    parts = name.split(".")
    return parts[1] if len(parts) > 1 else name


__all__ = [name for name in dir() if name.startswith("SPAN_")] + ["span_layer"]
