"""Trace exports: the span ring buffer, JSONL trace log, and span trees.

Finished spans leave the tracer through up to three sinks:

* :class:`SpanRing` — a bounded in-memory buffer (oldest spans evicted
  first) that backs ``GET /v1/traces`` and ``GET /v1/traces/{trace_id}``;
* :class:`TraceLog` — an optional append-only JSONL file (one span record
  per line) rotated by size to ``<path>.1``;
* the slow-request sink — the tracer writes one *tree* line (the whole
  trace, nested) through a :class:`TraceLog` when a root span exceeds the
  configured threshold, so outliers keep their full context even after the
  ring has moved on.

Everything here is plain dicts and stdlib JSON: span records double as
per-phase training rows for the learned cost models on the roadmap.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional


class SpanRing:
    """A thread-safe bounded buffer of finished span records."""

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("SpanRing capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._appended = 0

    def append(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._spans.append(record)
            self._appended += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def appended_total(self) -> int:
        """Spans ever appended (evicted ones included)."""
        with self._lock:
            return self._appended

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Every buffered span of one trace, in finish order."""
        with self._lock:
            return [s for s in self._spans if s.get("trace_id") == trace_id]

    def traces(self) -> List[Dict[str, object]]:
        """Per-trace summaries, most recently finished trace last."""
        summaries: "Dict[str, Dict[str, object]]" = {}
        for record in self.snapshot():
            trace_id = str(record.get("trace_id"))
            summary = summaries.setdefault(
                trace_id,
                {
                    "trace_id": trace_id,
                    "name": record.get("name"),
                    "spans": 0,
                    "duration_seconds": 0.0,
                    "status": "ok",
                },
            )
            summary["spans"] = int(summary["spans"]) + 1
            if record.get("root"):
                summary["name"] = record.get("name")
                summary["duration_seconds"] = record.get("duration")
                summary["service"] = record.get("service")
            if record.get("status") == "error":
                summary["status"] = "error"
        return list(summaries.values())

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class TraceLog:
    """Append-only JSONL sink with size-based rotation to ``<path>.1``."""

    def __init__(self, path: str, *, max_bytes: int = 16 << 20):
        if max_bytes < 1:
            raise ValueError("TraceLog max_bytes must be at least 1")
        self.path = str(path)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            if self._handle.tell() + len(line) + 1 > self.max_bytes:
                self._rotate_locked()
            self._handle.write(line + "\n")
            self._handle.flush()

    def _rotate_locked(self) -> None:
        self._handle.close()
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:
            pass  # rotation is best-effort; keep appending to the same file
        self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


def build_tree(records: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    """Nest flat span records into parent→children trees.

    Spans whose parent is unknown locally (e.g. the remote router span a
    worker root continues) become top-level roots.  Children sort by wall
    start so the tree reads in execution order.
    """
    nodes: Dict[str, Dict[str, object]] = {}
    ordered: List[Dict[str, object]] = []
    for record in records:
        node = dict(record)
        node["children"] = []
        span_id = str(node.get("span_id"))
        nodes[span_id] = node
        ordered.append(node)
    roots: List[Dict[str, object]] = []
    for node in ordered:
        parent_id = node.get("parent_id")
        parent = nodes.get(str(parent_id)) if parent_id else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)

    def sort_key(node: Dict[str, object]) -> float:
        wall = node.get("wall")
        return float(wall) if isinstance(wall, (int, float)) else 0.0

    def sort_children(node: Dict[str, object]) -> None:
        node["children"].sort(key=sort_key)
        for child in node["children"]:
            sort_children(child)

    roots.sort(key=sort_key)
    for root in roots:
        sort_children(root)
    return roots


def flatten_tree(roots: Iterable[Dict[str, object]]) -> Iterator[Dict[str, object]]:
    """Depth-first walk of a :func:`build_tree` forest (children included)."""
    stack = list(roots)[::-1]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.get("children") or []))


def load_jsonl(path: str) -> List[Dict[str, object]]:
    """Span records from a trace log or slow log (malformed lines skipped).

    Slow-log lines carry a nested ``spans`` tree; they are flattened back
    into plain records so both file shapes render the same way.
    """
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except ValueError:
                continue
            if not isinstance(document, dict):
                continue
            if isinstance(document.get("spans"), list):
                for node in flatten_tree(document["spans"]):
                    record = {k: v for k, v in node.items() if k != "children"}
                    records.append(record)
            else:
                records.append(document)
    return records


__all__ = [
    "SpanRing",
    "TraceLog",
    "build_tree",
    "flatten_tree",
    "load_jsonl",
]
