"""Waterfall rendering and the ``repro-trace`` console script.

Renders one trace as an indented waterfall — offset, duration, nested span
names, and a proportional timeline bar — from either trace source:

* a JSONL file written by ``--trace-log`` / ``--trace-slow-threshold``::

      repro-trace traces.jsonl --trace 3f2a...
      repro-trace traces.jsonl            # every trace in the file

* a live server's trace endpoint (worker or router)::

      repro-trace http://127.0.0.1:8600              # list buffered traces
      repro-trace http://127.0.0.1:8600 --trace 3f2a...
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterable, List, Optional
from urllib.error import URLError
from urllib.request import urlopen

from repro.obs.export import build_tree, load_jsonl

_BAR_FILL = "#"
_BAR_PAD = "."


def _format_ms(value: object) -> str:
    if not isinstance(value, (int, float)):
        return "?"
    return f"{value * 1000.0:.1f}ms"


def _bounds(records: List[Dict[str, object]]) -> Optional[tuple]:
    starts = [
        float(r["wall"]) for r in records if isinstance(r.get("wall"), (int, float))
    ]
    ends = [
        float(r["wall"]) + float(r["duration"])
        for r in records
        if isinstance(r.get("wall"), (int, float))
        and isinstance(r.get("duration"), (int, float))
    ]
    if not starts or not ends:
        return None
    t0, t1 = min(starts), max(ends)
    return t0, max(t1 - t0, 1e-9)


def _bar(record: Dict[str, object], t0: float, total: float, width: int) -> str:
    wall = record.get("wall")
    duration = record.get("duration")
    if not isinstance(wall, (int, float)) or not isinstance(duration, (int, float)):
        return " " * width
    left = int((float(wall) - t0) / total * width)
    left = max(0, min(width - 1, left))
    length = max(1, int(float(duration) / total * width))
    length = min(length, width - left)
    return _BAR_PAD * left + _BAR_FILL * length + _BAR_PAD * (width - left - length)


def _attr_text(record: Dict[str, object]) -> str:
    attrs = record.get("attrs")
    if not isinstance(attrs, dict) or not attrs:
        return ""
    pairs = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f" {pairs}"


def render_waterfall(
    records: Iterable[Dict[str, object]], *, width: int = 40
) -> str:
    """One trace's spans (flat records) as an indented text waterfall."""
    records = list(records)
    if not records:
        return "(no spans)"
    bounds = _bounds(records)
    lines: List[str] = []
    trace_id = records[0].get("trace_id")
    lines.append(f"trace {trace_id}  ({len(records)} spans)")

    def walk(node: Dict[str, object], depth: int) -> None:
        indent = "  " * depth
        status = "" if node.get("status") == "ok" else f" [{node.get('status')}]"
        service = node.get("service")
        origin = f" @{service}" if service else ""
        line = (
            f"{_format_ms(node.get('duration')):>10}  "
            f"{indent}{node.get('name')}{origin}{status}{_attr_text(node)}"
        )
        if bounds is not None:
            t0, total = bounds
            line = f"|{_bar(node, t0, total, width)}| {line}"
        lines.append(line)
        for child in node.get("children") or []:
            walk(child, depth + 1)

    for root in build_tree(records):
        walk(root, 0)
    return "\n".join(lines)


def render_summaries(summaries: Iterable[Dict[str, object]]) -> str:
    lines = [f"{'trace_id':<34} {'spans':>5} {'duration':>10}  root"]
    for summary in summaries:
        lines.append(
            f"{str(summary.get('trace_id')):<34} "
            f"{summary.get('spans', '?'):>5} "
            f"{_format_ms(summary.get('duration_seconds')):>10}  "
            f"{summary.get('name')}"
        )
    return "\n".join(lines)


def _fetch_json(url: str) -> Dict[str, object]:
    with urlopen(url, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _group_by_trace(
    records: List[Dict[str, object]],
) -> "Dict[str, List[Dict[str, object]]]":
    grouped: "Dict[str, List[Dict[str, object]]]" = {}
    for record in records:
        grouped.setdefault(str(record.get("trace_id")), []).append(record)
    return grouped


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Render request traces as a waterfall, from a --trace-log JSONL "
            "file or from a live server's GET /v1/traces endpoint."
        ),
    )
    parser.add_argument(
        "source",
        help="Path to a trace/slow JSONL file, or a server base URL "
        "(e.g. http://127.0.0.1:8600).",
    )
    parser.add_argument(
        "--trace", metavar="TRACE_ID", help="Render only this trace id."
    )
    parser.add_argument(
        "--width", type=int, default=40, help="Timeline bar width (default 40)."
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _run(build_parser().parse_args(argv))
    except BrokenPipeError:
        # The reader (a pager, a head, a grep -q) went away mid-print;
        # silence the shutdown flush too, then exit cleanly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _run(args: argparse.Namespace) -> int:
    from_url = args.source.startswith(("http://", "https://"))
    try:
        if from_url:
            base = args.source.rstrip("/")
            if args.trace:
                document = _fetch_json(f"{base}/v1/traces/{args.trace}")
                spans = document.get("spans")
                print(render_waterfall(spans or [], width=args.width))
            else:
                document = _fetch_json(f"{base}/v1/traces")
                print(render_summaries(document.get("traces") or []))
            return 0
        records = load_jsonl(args.source)
    except (OSError, URLError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 1
    grouped = _group_by_trace(records)
    if args.trace:
        if args.trace not in grouped:
            print(f"repro-trace: trace {args.trace} not found", file=sys.stderr)
            return 1
        print(render_waterfall(grouped[args.trace], width=args.width))
        return 0
    for index, (trace_id, spans) in enumerate(grouped.items()):
        if index:
            print()
        print(render_waterfall(spans, width=args.width))
    return 0


__all__ = ["build_parser", "main", "render_summaries", "render_waterfall"]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
