"""The one Prometheus text-exposition path shared by every registry.

Three dependency-free metric primitives (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) with label support, plus the escaping/formatting helpers
that render them in the Prometheus exposition format (version 0.0.4).  Both
serving registries — :class:`~repro.serve.http.metrics.HttpMetrics` and
:class:`~repro.serve.fleet.metrics.FleetMetrics` — render through this
module, so there is exactly one label-escaping and value-formatting
implementation in the tree.

All primitives are thread-safe: handler coroutines run on the event loop but
substrate counters are touched from executor threads, and a scrape may race
both.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

#: Request-latency bucket bounds (seconds) shared by the service's own
#: submit-to-done aggregates and the HTTP handler histogram, so the two
#: latency histograms on one /metrics page line up bucket for bucket.
DEFAULT_LATENCY_BUCKETS = (0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_labels(names: Sequence[str], values: Sequence[object]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing metric, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            labels = render_labels(self.label_names, key)
            lines.append(f"{self.name}{labels} {format_value(value)}")
        return lines


class Gauge(Counter):
    """A metric that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            self._values[key] = float(value)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """A cumulative-bucket histogram (the Prometheus ``le`` convention)."""

    kind = "histogram"

    DEFAULT_BUCKETS = DEFAULT_LATENCY_BUCKETS

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.bounds = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._buckets: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._counts: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = tuple(str(labels.get(name, "")) for name in self.label_names)
        with self._lock:
            counts = self._buckets.setdefault(key, [0] * (len(self.bounds) + 1))
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            keys = sorted(self._buckets)
            snapshot = {
                key: (list(self._buckets[key]), self._sums[key], self._counts[key])
                for key in keys
            }
        if not snapshot and not self.label_names:
            snapshot = {(): ([0] * (len(self.bounds) + 1), 0.0, 0)}
        for key, (counts, total, count) in snapshot.items():
            cumulative = 0
            for bound, bucket_count in zip(
                list(self.bounds) + [float("inf")], counts
            ):
                cumulative += bucket_count
                labels = render_labels(
                    self.label_names + ("le",), key + (format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = render_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{labels} {format_value(total)}")
            lines.append(f"{self.name}_count{labels} {count}")
        return lines


def render_family(
    name: str, kind: str, help_text: str, value: Optional[float]
) -> List[str]:
    """One unlabelled sample rendered as its own family (``None`` → omitted)."""
    if value is None:
        return []
    return [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} {kind}",
        f"{name} {format_value(float(value))}",
    ]


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "escape_label_value",
    "format_value",
    "render_family",
    "render_labels",
]
