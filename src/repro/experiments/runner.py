"""Timing runner shared by every figure experiment.

The paper reports response times of CFDMiner, CTANE, NaiveFast and FastCFD
under parameter sweeps.  :func:`run_algorithms` times the requested algorithms
on one relation and packages the measurements (plus CFD counts) into
:class:`AlgorithmRun` records; :class:`ExperimentResult` collects the records
of a whole sweep and renders them as the table each benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.api import DiscoveryRequest, Profiler, execute
from repro.experiments.reporting import format_table
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve import CacheStore, SessionPool

#: The algorithm line-up of the scalability figures (Fig. 5, 7, 8, 10).
DEFAULT_ALGORITHMS = ("cfdminer", "ctane", "naivefast", "fastcfd")


@dataclass
class AlgorithmRun:
    """One timed discovery run (one point of one curve of one figure)."""

    figure: str
    algorithm: str
    parameters: Dict[str, object]
    seconds: float
    n_cfds: int
    n_constant: int
    n_variable: int

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dictionary for table rendering."""
        row: Dict[str, object] = {"algorithm": self.algorithm}
        row.update(self.parameters)
        row.update(
            {
                "seconds": round(self.seconds, 4),
                "cfds": self.n_cfds,
                "constant": self.n_constant,
                "variable": self.n_variable,
            }
        )
        return row


@dataclass
class ExperimentResult:
    """All runs of one experiment (one paper figure or ablation)."""

    figure: str
    description: str
    runs: List[AlgorithmRun] = field(default_factory=list)

    def add(self, run: AlgorithmRun) -> None:
        self.runs.append(run)

    def rows(self) -> List[Dict[str, object]]:
        return [run.as_row() for run in self.runs]

    def series(self, algorithm: str, x_key: str, y_key: str = "seconds") -> List[tuple]:
        """The ``(x, y)`` series of one algorithm (what the figure plots)."""
        return [
            (run.parameters.get(x_key), run.as_row()[y_key])
            for run in self.runs
            if run.algorithm == algorithm
        ]

    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.algorithm, None)
        return list(seen)

    def to_table(self) -> str:
        """Fixed-width rendering of all runs (printed by the benchmarks)."""
        header = f"== {self.figure}: {self.description} =="
        return header + "\n" + format_table(self.rows())


def run_algorithms(
    figure: str,
    relation: Relation,
    min_support: int,
    parameters: Dict[str, object],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    *,
    algorithm_options: Optional[Dict[str, Dict[str, object]]] = None,
    labels: Optional[Dict[str, str]] = None,
    session: Optional[Profiler] = None,
    pool: Optional["SessionPool"] = None,
    store: Optional["CacheStore"] = None,
) -> List[AlgorithmRun]:
    """Time each algorithm on ``relation`` and return one record per run.

    Parameters
    ----------
    figure:
        Figure identifier (e.g. ``"fig5"``), stored on each record.
    relation, min_support:
        The workload.
    parameters:
        Sweep coordinates (e.g. ``{"dbsize": 2000, "k": 2}``) copied onto every
        record.
    algorithms:
        Which algorithms to run (registered names, see
        :data:`repro.api.REGISTRY`, or ``"auto"``).
    algorithm_options:
        Optional per-algorithm keyword arguments.
    labels:
        Optional display names (e.g. ``{"cfdminer": "CFDMiner(2)"}``).
    session:
        Optional shared :class:`~repro.api.Profiler` for ``relation``.  By
        default every algorithm runs one-shot — each builds its own
        structures, so the reported seconds compare algorithms fairly, which
        is what the paper's figures measure.  Pass a session to study warmed
        (production-style) runs instead.
    pool:
        Optional :class:`~repro.serve.SessionPool` to draw the session from.
        A sweep that calls :func:`run_algorithms` once per parameter point
        over the *same* relation then reuses one pooled session across
        points (and the pool's LRU/byte caps bound the sweep's memory).
        Ignored when ``session`` is given.
    store:
        Optional :class:`~repro.serve.CacheStore`.  Without a ``session`` or
        ``pool`` this builds a one-shot session that warm-starts from the
        store and dumps its caches back afterwards, so repeated experiment
        invocations across processes reuse each other's structures.  (A pool
        with its own ``store=`` handles persistence itself; passing both here
        is redundant but harmless — the pool wins.)
    """
    algorithm_options = algorithm_options or {}
    labels = labels or {}
    if session is None and pool is not None:
        session = pool.session(relation)
    persist_session = None
    if session is None and store is not None:
        session = Profiler(relation)
        session.warm_from(store)
        persist_session = session
    records: List[AlgorithmRun] = []
    for algorithm in algorithms:
        request = DiscoveryRequest(
            min_support=min_support,
            algorithm=algorithm,
            options=dict(algorithm_options.get(algorithm, {})),
        )
        if session is not None:
            result = session.run(request)
        else:
            result = execute(relation, request)
        counts = result.counts()
        records.append(
            AlgorithmRun(
                figure=figure,
                algorithm=labels.get(algorithm, algorithm),
                parameters=dict(parameters),
                seconds=result.elapsed_seconds,
                n_cfds=counts["total"],
                n_constant=counts["constant"],
                n_variable=counts["variable"],
            )
        )
    if persist_session is not None:
        persist_session.dump_caches(store)
    return records


__all__ = [
    "DEFAULT_ALGORITHMS",
    "AlgorithmRun",
    "ExperimentResult",
    "run_algorithms",
]
