"""The experiment data sets (Table 1 of Section 6.1) and the scaling policy.

The paper's experiments run a C++ implementation on data sets of up to one
million tuples.  This pure-Python reproduction keeps the *relative* structure
of every experiment but scales the absolute sizes down; the factor is
controlled by the environment variable ``REPRO_SCALE`` (default ``1.0``, which
corresponds to the sizes listed below).  EXPERIMENTS.md records the paper's
parameters next to ours for every figure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.datagen.tax import generate_tax
from repro.datagen.uci import chess, wisconsin_breast_cancer
from repro.exceptions import DataGenerationError
from repro.relational.relation import Relation

#: Environment variable scaling all data sizes used by the benchmarks.
SCALE_ENV_VAR = "REPRO_SCALE"


def scale_factor() -> float:
    """The global size multiplier taken from ``REPRO_SCALE`` (default 1.0)."""
    raw = os.environ.get(SCALE_ENV_VAR, "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise DataGenerationError(
            f"{SCALE_ENV_VAR} must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise DataGenerationError(f"{SCALE_ENV_VAR} must be positive")
    return value


def scaled(size: int, minimum: int = 50) -> int:
    """Scale an absolute size by :func:`scale_factor` (never below ``minimum``)."""
    return max(minimum, int(round(size * scale_factor())))


@dataclass(frozen=True)
class DatasetSpec:
    """A named data set of the evaluation (the rows of the paper's Table 1)."""

    name: str
    description: str
    paper_size: int
    paper_arity: int
    default_size: int
    loader: Callable[[int], Relation]

    def load(self, n_rows: Optional[int] = None) -> Relation:
        """Materialise the data set with ``n_rows`` tuples (scaled default)."""
        size = scaled(self.default_size) if n_rows is None else n_rows
        return self.loader(size)


def _load_wbc(n_rows: int) -> Relation:
    return wisconsin_breast_cancer(n_rows=n_rows)


def _load_chess(n_rows: int) -> Relation:
    return chess(n_rows=n_rows)


def _load_tax(n_rows: int) -> Relation:
    return generate_tax(db_size=n_rows, arity=7, cf=0.7, seed=42)


def dataset_registry() -> Dict[str, DatasetSpec]:
    """The three real-data experiments of Section 6.2.2 (plus their shapes)."""
    return {
        "wbc": DatasetSpec(
            name="wbc",
            description="Wisconsin breast cancer (UCI) — offline stand-in",
            paper_size=699,
            paper_arity=11,
            default_size=699,
            loader=_load_wbc,
        ),
        "chess": DatasetSpec(
            name="chess",
            description="Chess KRK end-game (UCI) — offline stand-in",
            paper_size=28056,
            paper_arity=7,
            default_size=2000,
            loader=_load_chess,
        ),
        "tax": DatasetSpec(
            name="tax",
            description="Synthetic tax/cust records (generator)",
            paper_size=100000,
            paper_arity=7,
            default_size=2000,
            loader=_load_tax,
        ),
    }


def load_dataset(name: str, n_rows: Optional[int] = None) -> Relation:
    """Load one of the registered data sets by name."""
    registry = dataset_registry()
    if name not in registry:
        raise DataGenerationError(
            f"unknown dataset {name!r}; available: {sorted(registry)}"
        )
    return registry[name].load(n_rows)


__all__ = [
    "SCALE_ENV_VAR",
    "scale_factor",
    "scaled",
    "DatasetSpec",
    "dataset_registry",
    "load_dataset",
]
