"""Experiment harness reproducing the paper's evaluation (Section 6).

* :mod:`repro.experiments.datasets` — the data sets of Table 1 (WBC, Chess,
  Tax) with the scaling policy used in this reproduction.
* :mod:`repro.experiments.runner` — timing utilities shared by all figures.
* :mod:`repro.experiments.figures` — one function per paper figure (5–16)
  plus the ablation experiments; each returns an :class:`ExperimentResult`.
* :mod:`repro.experiments.reporting` — fixed-width table rendering used by the
  benchmark modules and EXPERIMENTS.md.
"""

from repro.experiments.datasets import DatasetSpec, dataset_registry, load_dataset, scale_factor
from repro.experiments.runner import AlgorithmRun, ExperimentResult, run_algorithms
from repro.experiments.reporting import format_table
from repro.experiments import figures

__all__ = [
    "DatasetSpec",
    "dataset_registry",
    "load_dataset",
    "scale_factor",
    "AlgorithmRun",
    "ExperimentResult",
    "run_algorithms",
    "format_table",
    "figures",
]
