"""Fixed-width table rendering for experiment output.

The benchmarks print the series each paper figure plots; this module renders
lists of dictionaries as aligned text tables so the output is readable both on
a terminal and inside EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None) -> str:
    """Render ``rows`` (list of dicts) as an aligned, pipe-separated table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    header = " | ".join(column.ljust(widths[j]) for j, column in enumerate(columns))
    rule = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
        for row in rendered
    ]
    return "\n".join([header, rule, *body])


def format_series(series: Iterable[tuple], x_label: str, y_label: str) -> str:
    """Render an ``(x, y)`` series as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in series]
    return format_table(rows, columns=[x_label, y_label])


__all__ = ["format_table", "format_series"]
