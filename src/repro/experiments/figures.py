"""One experiment definition per paper figure (Section 6.2) plus ablations.

Every function returns an :class:`~repro.experiments.runner.ExperimentResult`
whose rows are the points of the corresponding figure.  The paper's absolute
data sizes (up to one million tuples, C++ implementation) are scaled down to
pure-Python-friendly defaults; the mapping is:

=======  ==========================================  =================================
figure   paper parameters                            default parameters here
=======  ==========================================  =================================
Fig. 5   DBSIZE 20K–1M, ARITY 7, CF 0.7, SUP 0.1 %   DBSIZE 500–4 000, SUP 1 %
Fig. 6   #CFDs for the Fig. 5 sweep                  same sweep
Fig. 7   ARITY 7–31, DBSIZE 20K, SUP 0.1 %           ARITY 7–13, DBSIZE 500
Fig. 8   k 50–150, DBSIZE 100K, CF 0.7               k 5–40, DBSIZE 2 000
Fig. 9   #CFDs for the Fig. 8 sweep                  same sweep
Fig. 10  CF 0.3–0.7, DBSIZE 50K, k 50, ARITY 9       CF 0.3–0.7, DBSIZE 1 000, k 12
Fig. 11  WBC, k sweep                                WBC stand-in (699 rows), k 40–160
Fig. 12  Chess, k sweep                              Chess stand-in (2 000 rows), k 16–96
Fig. 13  Tax, k sweep                                Tax (2 000 rows), k 10–80
Fig. 14  WBC #CFDs                                   same sweep as Fig. 11
Fig. 15  Chess #CFDs                                 same sweep as Fig. 12
Fig. 16  Tax #CFDs                                   same sweep as Fig. 13
=======  ==========================================  =================================

Every size is additionally multiplied by the ``REPRO_SCALE`` environment
variable so the full paper-scale sweep can be requested on faster hardware.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.api import DiscoveryRequest, execute
from repro.core.ctane import CTane
from repro.datagen.tax import generate_tax
from repro.experiments.datasets import load_dataset, scaled
from repro.experiments.runner import AlgorithmRun, ExperimentResult, run_algorithms
from repro.relational.relation import Relation

#: CTANE is excluded from sweeps beyond this arity by default; the paper
#: reports that CTANE cannot run to completion above arity 17 (Section 6.2.1),
#: and the same wall appears (earlier) in pure Python.
CTANE_MAX_ARITY = 9


# ---------------------------------------------------------------------- #
# scalability on synthetic data (Figs. 5-10)
# ---------------------------------------------------------------------- #
def figure5(
    sizes: Optional[Sequence[int]] = None,
    *,
    arity: int = 7,
    cf: float = 0.7,
    support_ratio: float = 0.01,
    seed: int = 42,
) -> ExperimentResult:
    """Fig. 5 — response time versus DBSIZE (all five algorithm variants)."""
    sizes = list(sizes) if sizes is not None else [scaled(s) for s in (500, 1000, 2000, 4000)]
    result = ExperimentResult(
        figure="fig5", description="scalability w.r.t. DBSIZE (Tax, ARITY 7, CF 0.7)"
    )
    for size in sizes:
        relation = generate_tax(db_size=size, arity=arity, cf=cf, seed=seed)
        k = max(2, int(round(support_ratio * size)))
        parameters = {"dbsize": size, "k": k}
        for run in run_algorithms(
            "fig5", relation, k, parameters, algorithms=("cfdminer", "ctane", "naivefast", "fastcfd")
        ):
            result.add(run)
        # CFDMiner(2): the k=2 run whose closed item sets FastCFD reuses.
        for run in run_algorithms(
            "fig5",
            relation,
            2,
            parameters,
            algorithms=("cfdminer",),
            labels={"cfdminer": "cfdminer(2)"},
        ):
            result.add(run)
    return result


def figure6(
    sizes: Optional[Sequence[int]] = None,
    *,
    arity: int = 7,
    cf: float = 0.7,
    support_ratio: float = 0.01,
    seed: int = 42,
) -> ExperimentResult:
    """Fig. 6 — number of constant/variable CFDs versus DBSIZE (FastCFD)."""
    sizes = list(sizes) if sizes is not None else [scaled(s) for s in (500, 1000, 2000, 4000)]
    result = ExperimentResult(
        figure="fig6", description="number of CFDs found w.r.t. DBSIZE (Tax)"
    )
    for size in sizes:
        relation = generate_tax(db_size=size, arity=arity, cf=cf, seed=seed)
        k = max(2, int(round(support_ratio * size)))
        for run in run_algorithms(
            "fig6", relation, k, {"dbsize": size, "k": k}, algorithms=("fastcfd",)
        ):
            result.add(run)
    return result


def figure7(
    arities: Optional[Sequence[int]] = None,
    *,
    db_size: int = 500,
    cf: float = 0.7,
    support_ratio: float = 0.02,
    seed: int = 42,
    ctane_max_arity: int = CTANE_MAX_ARITY,
) -> ExperimentResult:
    """Fig. 7 — response time versus ARITY (CTANE vs NaiveFast vs FastCFD)."""
    arities = list(arities) if arities is not None else [7, 9, 11, 13]
    db_size = scaled(db_size)
    k = max(2, int(round(support_ratio * db_size)))
    result = ExperimentResult(
        figure="fig7", description="scalability w.r.t. ARITY (Tax, CF 0.7)"
    )
    for arity in arities:
        relation = generate_tax(db_size=db_size, arity=arity, cf=cf, seed=seed)
        algorithms: List[str] = ["naivefast", "fastcfd"]
        if arity <= ctane_max_arity:
            algorithms.insert(0, "ctane")
        for run in run_algorithms(
            "fig7", relation, k, {"arity": arity, "dbsize": db_size, "k": k}, algorithms
        ):
            result.add(run)
    return result


def figure8(
    ks: Optional[Sequence[int]] = None,
    *,
    db_size: int = 2000,
    arity: int = 7,
    cf: float = 0.7,
    seed: int = 42,
) -> ExperimentResult:
    """Fig. 8 — response time versus the support threshold ``k``."""
    db_size = scaled(db_size)
    ks = list(ks) if ks is not None else [5, 10, 20, 40]
    relation = generate_tax(db_size=db_size, arity=arity, cf=cf, seed=seed)
    result = ExperimentResult(
        figure="fig8", description="scalability w.r.t. support threshold k (Tax)"
    )
    for k in ks:
        for run in run_algorithms(
            "fig8",
            relation,
            k,
            {"dbsize": db_size, "k": k},
            algorithms=("ctane", "naivefast", "fastcfd"),
        ):
            result.add(run)
    return result


def figure9(
    ks: Optional[Sequence[int]] = None,
    *,
    db_size: int = 2000,
    arity: int = 7,
    cf: float = 0.7,
    seed: int = 42,
) -> ExperimentResult:
    """Fig. 9 — number of constant/variable CFDs versus ``k`` (FastCFD)."""
    db_size = scaled(db_size)
    ks = list(ks) if ks is not None else [5, 10, 20, 40]
    relation = generate_tax(db_size=db_size, arity=arity, cf=cf, seed=seed)
    result = ExperimentResult(
        figure="fig9", description="number of CFDs found w.r.t. k (Tax)"
    )
    for k in ks:
        for run in run_algorithms(
            "fig9", relation, k, {"dbsize": db_size, "k": k}, algorithms=("fastcfd",)
        ):
            result.add(run)
    return result


def figure10(
    cfs: Optional[Sequence[float]] = None,
    *,
    db_size: int = 1000,
    arity: int = 9,
    k: int = 12,
    seed: int = 42,
) -> ExperimentResult:
    """Fig. 10 — response time versus the correlation factor CF."""
    db_size = scaled(db_size)
    cfs = list(cfs) if cfs is not None else [0.3, 0.5, 0.7]
    result = ExperimentResult(
        figure="fig10", description="scalability w.r.t. correlation factor CF (Tax)"
    )
    for cf in cfs:
        relation = generate_tax(db_size=db_size, arity=arity, cf=cf, seed=seed)
        for run in run_algorithms(
            "fig10",
            relation,
            k,
            {"cf": cf, "dbsize": db_size, "k": k},
            algorithms=("ctane", "naivefast", "fastcfd"),
        ):
            result.add(run)
    return result


# ---------------------------------------------------------------------- #
# real-data experiments (Figs. 11-16)
# ---------------------------------------------------------------------- #
def _dataset_k_sweep(
    figure: str,
    description: str,
    dataset: str,
    ks: Sequence[int],
    algorithms: Sequence[str],
) -> ExperimentResult:
    relation = load_dataset(dataset)
    result = ExperimentResult(figure=figure, description=description)
    for k in ks:
        for run in run_algorithms(
            figure,
            relation,
            k,
            {"dataset": dataset, "dbsize": relation.n_rows, "k": k},
            algorithms=algorithms,
        ):
            result.add(run)
    return result


def figure11(ks: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Fig. 11 — WBC: response time versus ``k`` (CTANE vs FastCFD)."""
    ks = list(ks) if ks is not None else [40, 80, 120, 160]
    return _dataset_k_sweep(
        "fig11", "Wisconsin breast cancer: runtime vs k", "wbc", ks, ("ctane", "fastcfd")
    )


def figure12(ks: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Fig. 12 — Chess: response time versus ``k`` (CTANE vs FastCFD)."""
    ks = list(ks) if ks is not None else [16, 32, 64, 96]
    return _dataset_k_sweep(
        "fig12", "Chess (KRK): runtime vs k", "chess", ks, ("ctane", "fastcfd")
    )


def figure13(ks: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Fig. 13 — Tax: response time versus ``k`` (CTANE vs FastCFD)."""
    ks = list(ks) if ks is not None else [10, 20, 40, 80]
    return _dataset_k_sweep(
        "fig13", "Tax: runtime vs k", "tax", ks, ("ctane", "fastcfd")
    )


def figure14(ks: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Fig. 14 — WBC: number of CFDs versus ``k``."""
    ks = list(ks) if ks is not None else [40, 80, 120, 160]
    return _dataset_k_sweep(
        "fig14", "Wisconsin breast cancer: #CFDs vs k", "wbc", ks, ("fastcfd",)
    )


def figure15(ks: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Fig. 15 — Chess: number of CFDs versus ``k``."""
    ks = list(ks) if ks is not None else [16, 32, 64, 96]
    return _dataset_k_sweep(
        "fig15", "Chess (KRK): #CFDs vs k", "chess", ks, ("fastcfd",)
    )


def figure16(ks: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Fig. 16 — Tax: number of CFDs versus ``k``."""
    ks = list(ks) if ks is not None else [10, 20, 40, 80]
    return _dataset_k_sweep(
        "fig16", "Tax: #CFDs vs k", "tax", ks, ("fastcfd",)
    )


# ---------------------------------------------------------------------- #
# ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------- #
def ablation_closed_sets(
    sizes: Optional[Sequence[int]] = None,
    *,
    arity: int = 7,
    cf: float = 0.7,
    support_ratio: float = 0.01,
    seed: int = 42,
) -> ExperimentResult:
    """E-A1 — closed-item-set difference sets (FastCFD) vs pairwise (NaiveFast).

    The paper reports a 5-10x improvement from the closed-item-set pruning,
    growing with DBSIZE; this ablation measures the same ratio.
    """
    sizes = list(sizes) if sizes is not None else [scaled(s) for s in (500, 1000, 2000)]
    result = ExperimentResult(
        figure="ablation-closed-sets",
        description="FastCFD difference-set provider ablation (closed vs partition)",
    )
    for size in sizes:
        relation = generate_tax(db_size=size, arity=arity, cf=cf, seed=seed)
        k = max(2, int(round(support_ratio * size)))
        for run in run_algorithms(
            "ablation-closed-sets",
            relation,
            k,
            {"dbsize": size, "k": k},
            algorithms=("naivefast", "fastcfd"),
        ):
            result.add(run)
    return result


def ablation_ctane_pruning(
    sizes: Optional[Sequence[int]] = None,
    *,
    arity: int = 7,
    cf: float = 0.7,
    support_ratio: float = 0.02,
    seed: int = 42,
) -> ExperimentResult:
    """E-A2 — CTANE with and without the empty-``C⁺`` element pruning."""
    sizes = list(sizes) if sizes is not None else [scaled(s, minimum=50) for s in (300, 600)]
    result = ExperimentResult(
        figure="ablation-ctane-pruning",
        description="CTANE C+ pruning ablation (pruning on vs off)",
    )
    for size in sizes:
        relation = generate_tax(db_size=size, arity=arity, cf=cf, seed=seed)
        k = max(2, int(round(support_ratio * size)))
        for label, pruning in (("ctane", True), ("ctane(no-pruning)", False)):
            start = time.perf_counter()
            ctane = CTane(relation, k, cplus_pruning=pruning)
            cfds = ctane.discover()
            elapsed = time.perf_counter() - start
            result.add(
                AlgorithmRun(
                    figure="ablation-ctane-pruning",
                    algorithm=label,
                    parameters={"dbsize": size, "k": k},
                    seconds=elapsed,
                    n_cfds=len(cfds),
                    n_constant=sum(1 for c in cfds if c.is_constant),
                    n_variable=sum(1 for c in cfds if c.is_variable),
                )
            )
    return result


def ablation_constant_delegation(
    sizes: Optional[Sequence[int]] = None,
    *,
    arity: int = 7,
    cf: float = 0.7,
    support_ratio: float = 0.01,
    seed: int = 42,
) -> ExperimentResult:
    """E-A3 — FastCFD constant-CFD handling: CFDMiner delegation vs inline.

    Delegating constant CFDs to CFDMiner (and reusing its closed item sets) is
    the optimisation Section 5.5 recommends; the inline mode discovers them
    through FindMin's base case (a) instead.
    """
    sizes = list(sizes) if sizes is not None else [scaled(s) for s in (500, 1000, 2000)]
    result = ExperimentResult(
        figure="ablation-constant-delegation",
        description="FastCFD constant-CFD discovery ablation (cfdminer vs inline)",
    )
    for size in sizes:
        relation = generate_tax(db_size=size, arity=arity, cf=cf, seed=seed)
        k = max(2, int(round(support_ratio * size)))
        for label, mode in (("fastcfd(cfdminer)", "cfdminer"), ("fastcfd(inline)", "inline")):
            outcome = execute(
                relation,
                DiscoveryRequest(
                    min_support=k,
                    algorithm="fastcfd",
                    options={"constant_cfds": mode},
                ),
            )
            elapsed = outcome.elapsed_seconds
            counts = outcome.counts()
            result.add(
                AlgorithmRun(
                    figure="ablation-constant-delegation",
                    algorithm=label,
                    parameters={"dbsize": size, "k": k},
                    seconds=elapsed,
                    n_cfds=counts["total"],
                    n_constant=counts["constant"],
                    n_variable=counts["variable"],
                )
            )
    return result


__all__ = [
    "CTANE_MAX_ARITY",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "ablation_closed_sets",
    "ablation_ctane_pruning",
    "ablation_constant_delegation",
]
