"""Sampling-based discovery (the paper's future-work item, Section 8).

The paper notes that no dependency-discovery algorithm scales when *both* the
arity and the size of the relation are large, and proposes mining a sample
``r_s`` of ``r`` — drawn so that ``r_s`` represents ``r`` well — and validating
the result, mentioning stratified sampling as the candidate technique.  This
module implements that programme:

* :func:`stratified_sample` — proportional stratified sampling of a relation
  by a set of stratification attributes (falling back to uniform sampling when
  no strata are given);
* :func:`discover_with_sampling` — mine a canonical cover on the sample with a
  proportionally scaled support threshold, then *validate* every candidate on
  the full relation, returning the verified cover together with precision
  statistics.

Because CFD satisfaction is not preserved under sampling in either direction,
the validation step is what makes the result trustworthy: every returned CFD
is guaranteed minimal and k-frequent on the full relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import DiscoveryRequest, Profiler, execute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve import SessionPool
from repro.core.cfd import CFD
from repro.core.minimality import is_minimal
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation


def stratified_sample(
    relation: Relation,
    sample_size: int,
    *,
    strata: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Relation:
    """A deterministic (seeded) stratified sample of ``sample_size`` rows.

    Rows are grouped by their values on the ``strata`` attributes and each
    stratum contributes a number of rows proportional to its size (largest
    remainders get the leftover rows).  Without ``strata`` the sample is a
    plain uniform sample.  Asking for at least ``n_rows`` rows returns the
    relation unchanged.
    """
    if sample_size <= 0:
        raise DiscoveryError("sample_size must be positive")
    if sample_size >= relation.n_rows:
        return relation
    rng = np.random.default_rng(seed)
    if not strata:
        indices = sorted(
            int(i) for i in rng.choice(relation.n_rows, size=sample_size, replace=False)
        )
        return relation.take(indices)

    groups: Dict[Tuple[Hashable, ...], List[int]] = {}
    columns = [relation.column(a) for a in strata]
    for row in range(relation.n_rows):
        key = tuple(column[row] for column in columns)
        groups.setdefault(key, []).append(row)

    allocations: List[Tuple[float, Tuple[Hashable, ...], int]] = []
    total = relation.n_rows
    chosen: List[int] = []
    for key, members in groups.items():
        exact = sample_size * len(members) / total
        base = int(exact)
        allocations.append((exact - base, key, base))
    assigned = sum(base for _, _, base in allocations)
    leftover = sample_size - assigned
    # Largest-remainder allocation of the leftover rows.
    allocations.sort(key=lambda item: (-item[0], str(item[1])))
    bonus_keys = {key for _, key, _ in allocations[:leftover]}
    for fraction, key, base in allocations:
        members = groups[key]
        quota = min(len(members), base + (1 if key in bonus_keys else 0))
        if quota <= 0:
            continue
        picked = rng.choice(len(members), size=quota, replace=False)
        chosen.extend(members[int(i)] for i in picked)
    chosen = sorted(chosen)[:sample_size]
    return relation.take(chosen)


@dataclass
class SampledDiscoveryResult:
    """Outcome of :func:`discover_with_sampling`."""

    cfds: List[CFD]
    candidates: int
    validated: int
    sample_size: int
    sample_support: int
    full_support: int
    algorithm: str
    rejected: List[CFD] = field(default_factory=list)

    @property
    def precision(self) -> float:
        """Fraction of sample-mined candidates that survive full validation."""
        return self.validated / self.candidates if self.candidates else 1.0

    def summary(self) -> str:
        return (
            f"sampling discovery ({self.algorithm}): {self.validated}/{self.candidates} "
            f"candidates validated on the full relation "
            f"(sample {self.sample_size} rows, k_sample={self.sample_support}, "
            f"k={self.full_support}, precision={self.precision:.2f})"
        )


def discover_with_sampling(
    relation: Relation,
    min_support: int,
    *,
    sample_size: int,
    algorithm: str = "fastcfd",
    strata: Optional[Sequence[str]] = None,
    seed: int = 0,
    validate: bool = True,
    session: Optional[Profiler] = None,
    pool: Optional["SessionPool"] = None,
    **options: object,
) -> SampledDiscoveryResult:
    """Mine CFDs on a stratified sample and validate them on the full relation.

    Parameters
    ----------
    relation, min_support:
        The full relation and the support threshold that the *returned* CFDs
        must satisfy on it.
    sample_size:
        Number of rows to sample.
    algorithm:
        Discovery algorithm to run on the sample.
    strata:
        Stratification attributes (default: none → uniform sampling).
    seed:
        Sampling seed.
    validate:
        When ``True`` (default), candidates are re-checked on the full
        relation (minimality + k-frequency) and only survivors are returned;
        when ``False`` the raw sample cover is returned (useful to study the
        sampling error itself).
    session:
        Optional :class:`~repro.api.Profiler` bound to the *sample* to mine
        through (e.g. when probing several thresholds over one sample); by
        default a one-shot run through :func:`repro.api.execute` is used.
    pool:
        Optional :class:`~repro.serve.SessionPool` to mine through instead:
        the drawn sample's session comes from (and stays in) the pool, so
        repeated sampling runs — the same seed re-probed at several
        thresholds, or a serving workload mixing full and sampled discovery —
        reuse one warmed session.  Ignored when ``session`` is given.
    """
    if min_support < 1:
        raise DiscoveryError("min_support must be at least 1")
    sample = stratified_sample(relation, sample_size, strata=strata, seed=seed)
    ratio = sample.n_rows / relation.n_rows if relation.n_rows else 1.0
    sample_support = max(1, int(round(min_support * ratio)))
    request = DiscoveryRequest(
        min_support=sample_support, algorithm=algorithm, options=options
    )
    if session is None and pool is not None:
        session = pool.session(sample)
    if session is not None:
        if session.relation != sample:
            raise DiscoveryError(
                "the provided session does not profile the drawn sample"
            )
        outcome = session.run(request)
    else:
        outcome = execute(sample, request)
    candidates = list(outcome.cfds)
    if not validate:
        return SampledDiscoveryResult(
            cfds=candidates,
            candidates=len(candidates),
            validated=len(candidates),
            sample_size=sample.n_rows,
            sample_support=sample_support,
            full_support=min_support,
            algorithm=outcome.algorithm,
        )
    verified: List[CFD] = []
    rejected: List[CFD] = []
    for cfd in candidates:
        if is_minimal(relation, cfd, k=min_support):
            verified.append(cfd)
        else:
            rejected.append(cfd)
    return SampledDiscoveryResult(
        cfds=verified,
        candidates=len(candidates),
        validated=len(verified),
        sample_size=sample.n_rows,
        sample_support=sample_support,
        full_support=min_support,
        algorithm=outcome.algorithm,
        rejected=rejected,
    )


__all__ = ["stratified_sample", "SampledDiscoveryResult", "discover_with_sampling"]
