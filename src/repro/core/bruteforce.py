"""Definition-level (brute-force) CFD discovery.

This module is **not** one of the paper's algorithms; it exists so that the
reproduction can be validated.  It enumerates every candidate constant and
variable CFD over the active domains of a relation and keeps exactly those
that are minimal and k-frequent according to the definitions of Section 2.2.
The output is therefore the *complete* set of minimal k-frequent CFDs (the
superset of any canonical cover an algorithm may return, since canonical
covers are allowed to omit CFDs implied by the rest).

Complexity is exponential in the arity and in the domain sizes; use it only
on small relations (the test-suite does).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Iterable, List, Optional, Sequence, Set

from repro.core.cfd import CFD
from repro.core.minimality import is_minimal
from repro.core.pattern import WILDCARD
from repro.relational.relation import Relation


def _variable_candidates(
    relation: Relation, lhs: Sequence[str], rhs: str
) -> Iterable[CFD]:
    """All variable CFD candidates ``(lhs → rhs, (tp ‖ _))`` over active domains."""
    domains = [
        list(relation.active_domain(attribute)) + [WILDCARD] for attribute in lhs
    ]
    for pattern in product(*domains):
        yield CFD(lhs, pattern, rhs, WILDCARD)


def _constant_candidates(
    relation: Relation, lhs: Sequence[str], rhs: str
) -> Iterable[CFD]:
    """All constant CFD candidates ``(lhs → rhs, (tp ‖ a))`` over active domains."""
    domains = [list(relation.active_domain(attribute)) for attribute in lhs]
    rhs_domain = list(relation.active_domain(rhs))
    for pattern in product(*domains):
        for rhs_value in rhs_domain:
            yield CFD(lhs, pattern, rhs, rhs_value)


def discover_bruteforce(
    relation: Relation,
    min_support: int = 1,
    *,
    max_lhs_size: Optional[int] = None,
    constant_only: bool = False,
    variable_only: bool = False,
) -> Set[CFD]:
    """All minimal ``min_support``-frequent CFDs of ``relation`` by definition.

    Parameters
    ----------
    relation:
        The sample relation (keep it small: the enumeration is exponential).
    min_support:
        The support threshold ``k``.
    max_lhs_size:
        Optional cap on the LHS size; ``None`` explores up to arity − 1.
    constant_only / variable_only:
        Restrict the search to one of the two canonical CFD classes.

    Returns
    -------
    set of CFD
        Every nontrivial, satisfied, k-frequent, left-reduced CFD in canonical
        form (constant CFDs and variable CFDs).
    """
    attributes = relation.attributes
    limit = len(attributes) - 1 if max_lhs_size is None else max_lhs_size
    found: Set[CFD] = set()
    for rhs in attributes:
        others = [a for a in attributes if a != rhs]
        for size in range(0, limit + 1):
            for lhs in combinations(others, size):
                if not variable_only:
                    for candidate in _constant_candidates(relation, lhs, rhs):
                        if is_minimal(relation, candidate, k=min_support):
                            found.add(candidate)
                if not constant_only:
                    for candidate in _variable_candidates(relation, lhs, rhs):
                        if is_minimal(relation, candidate, k=min_support):
                            found.add(candidate)
    return found


__all__ = ["discover_bruteforce"]
