"""CFDMiner: discovery of minimal constant CFDs (Section 3 of the paper).

CFDMiner exploits the correspondence (Proposition 1) between minimal,
k-frequent constant CFDs ``(X → A, (tp ‖ a))`` and k-frequent **free** item
sets ``(X, tp)`` whose closure contains the item ``(A, a)``, provided no free
proper subset of ``(X, tp)`` already has ``(A, a)`` in its closure.

The algorithm therefore:

1. mines all k-frequent free item sets together with their closures and the
   closed→free (C2F) mapping — the job of
   :func:`repro.itemsets.mining.mine_free_and_closed`, standing in for
   GCGROWTH [26];
2. attaches to every free item set the candidate RHS items
   ``clo(Y, sp) \\ (Y, sp)`` (restricted to attributes outside ``Y``);
3. walks the free item sets in ascending size order and removes from the
   candidate RHS of ``(Y, sp)`` every item that already appears in the
   closure of one of its free proper subsets (the left-reducedness filter of
   Proposition 1, implemented with a hash table of free item sets);
4. emits a constant CFD per surviving ``(A, a)`` candidate.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.cfd import CFD
from repro.exceptions import DiscoveryError
from repro.itemsets.itemset import EncodedItem, EncodedItemSet
from repro.itemsets.mining import FreeClosedResult, mine_free_and_closed
from repro.relational.relation import Relation


class CFDMiner:
    """Constant CFD discovery via free/closed item-set mining.

    Parameters
    ----------
    relation:
        The sample relation ``r``.
    min_support:
        The support threshold ``k`` (at least 1).
    max_lhs_size:
        Optional cap on the number of LHS attributes (``None``: unbounded).
    mining_result:
        Optional pre-computed free/closed mining result for this relation and
        threshold (a :class:`~repro.itemsets.mining.FreeClosedResult`); the
        :class:`~repro.api.profiler.Profiler` session passes its cached copy
        here so repeated runs skip the mining phase.
    progress:
        Optional callback ``progress(stage, done, total)`` invoked while the
        free item sets are processed (for long-run feedback).

    Examples
    --------
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows(
    ...     ["AC", "CT"],
    ...     [("908", "MH"), ("908", "MH"), ("212", "NYC")],
    ... )
    >>> [str(c) for c in CFDMiner(r, min_support=2).discover()]
    ['([AC] -> CT, (908 || MH))']
    """

    def __init__(
        self,
        relation: Relation,
        min_support: int = 1,
        *,
        max_lhs_size: Optional[int] = None,
        mining_result: Optional[FreeClosedResult] = None,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ):
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        self._relation = relation
        self._min_support = min_support
        self._max_lhs_size = max_lhs_size
        self._mining_result: Optional[FreeClosedResult] = mining_result
        self._progress = progress

    # ------------------------------------------------------------------ #
    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def min_support(self) -> int:
        return self._min_support

    @property
    def mining_result(self) -> FreeClosedResult:
        """The free/closed mining result (computed lazily, reusable).

        FastCFD reuses this to avoid mining twice when it delegates constant
        CFD discovery to CFDMiner (Section 5.5).
        """
        if self._mining_result is None:
            self._mining_result = mine_free_and_closed(
                self._relation,
                min_support=self._min_support,
                max_size=self._max_lhs_size,
            )
        return self._mining_result

    # ------------------------------------------------------------------ #
    def discover(self) -> List[CFD]:
        """Return the canonical cover of minimal k-frequent constant CFDs."""
        result = self.mining_result
        free_list = result.free_sets_sorted()
        free_index: Set[EncodedItemSet] = set(result.free_sets.keys())

        # Candidate RHS items per free set: closure items on attributes that
        # are not part of the free set itself.
        rhs_candidates: Dict[EncodedItemSet, Set[EncodedItem]] = {}
        closures: Dict[EncodedItemSet, FrozenSet[EncodedItem]] = {}
        for free in free_list:
            own_attributes = free.attributes
            closures[free.items] = free.closure
            rhs_candidates[free.items] = {
                item for item in free.closure if item[0] not in own_attributes
            }

        cfds: List[CFD] = []
        for position, free in enumerate(free_list):
            if self._progress is not None:
                self._progress("cfdminer:free-set", position + 1, len(free_list))
            candidates = rhs_candidates[free.items]
            if not candidates:
                continue
            # Left-reducedness (Proposition 1, condition 3): drop candidates
            # already produced by a free proper subset's closure.
            survivors = set(candidates)
            items_sorted = sorted(free.items)
            for size in range(len(items_sorted)):
                if not survivors:
                    break
                for subset in combinations(items_sorted, size):
                    subset_key: EncodedItemSet = frozenset(subset)
                    if subset_key not in free_index:
                        continue
                    survivors -= closures[subset_key]
                    if not survivors:
                        break
            for attribute_index, code in sorted(survivors):
                cfds.append(self._build_cfd(free.items, attribute_index, code))
        return cfds

    # ------------------------------------------------------------------ #
    def _build_cfd(
        self, lhs_items: EncodedItemSet, rhs_index: int, rhs_code: int
    ) -> CFD:
        """Decode an encoded (free set, RHS item) pair into a constant CFD."""
        schema = self._relation.schema
        encoding = self._relation.encoding
        lhs_sorted = sorted(lhs_items)
        lhs_names = tuple(schema.name_of(index) for index, _ in lhs_sorted)
        lhs_values = tuple(
            encoding.decode_value(index, code) for index, code in lhs_sorted
        )
        rhs_name = schema.name_of(rhs_index)
        rhs_value = encoding.decode_value(rhs_index, rhs_code)
        return CFD(lhs_names, lhs_values, rhs_name, rhs_value)


def discover_constant_cfds(
    relation: Relation, min_support: int = 1, *, max_lhs_size: Optional[int] = None
) -> List[CFD]:
    """Convenience wrapper: run :class:`CFDMiner` on ``relation``."""
    return CFDMiner(relation, min_support, max_lhs_size=max_lhs_size).discover()


__all__ = ["CFDMiner", "discover_constant_cfds"]
