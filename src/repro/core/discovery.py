"""Unified front-end for CFD discovery.

The paper's conclusion positions the three algorithms as a *toolbox*: use
CFDMiner when only constant CFDs are needed, FastCFD when the arity is large,
CTANE when the support threshold is large and the arity moderate.  This module
provides a single :func:`discover` entry point with an ``algorithm`` switch
(plus ``"auto"`` which applies the paper's guidance) and a
:class:`DiscoveryResult` value object that callers and the experiment harness
share.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.cfdminer import CFDMiner
from repro.core.ctane import CTane
from repro.core.fastcfd import FastCFD, NaiveFast
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation

#: Algorithms accepted by :func:`discover`.
ALGORITHMS = ("cfdminer", "ctane", "fastcfd", "naivefast", "auto")

#: The arity above which ``"auto"`` prefers FastCFD over CTANE; the paper
#: reports CTANE failing to complete beyond arity 17 and FastCFD winning by
#: orders of magnitude from arity 10-15 onwards (Section 6.2.1).
AUTO_ARITY_CUTOFF = 10

#: The relative support (k / |r|) above which ``"auto"`` prefers CTANE when
#: the arity is moderate (the paper: CTANE outperforms FastCFD when the
#: support threshold is large).
AUTO_SUPPORT_RATIO_CUTOFF = 0.05


@dataclass
class DiscoveryResult:
    """The outcome of one discovery run.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the result.
    cfds:
        The discovered canonical cover.
    min_support:
        The support threshold ``k`` used.
    elapsed_seconds:
        Wall-clock time of the discovery call.
    relation_size / relation_arity:
        Shape of the profiled relation (the paper's DBSIZE and ARITY).
    """

    algorithm: str
    cfds: List[CFD]
    min_support: int
    elapsed_seconds: float
    relation_size: int
    relation_arity: int
    extra: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def constant_cfds(self) -> List[CFD]:
        """The constant CFDs of the cover."""
        return [cfd for cfd in self.cfds if cfd.is_constant]

    @property
    def variable_cfds(self) -> List[CFD]:
        """The variable CFDs of the cover."""
        return [cfd for cfd in self.cfds if cfd.is_variable]

    @property
    def n_cfds(self) -> int:
        return len(self.cfds)

    def counts(self) -> Dict[str, int]:
        """Counts of constant/variable/total CFDs (Figures 6, 9, 14-16)."""
        return {
            "constant": len(self.constant_cfds),
            "variable": len(self.variable_cfds),
            "total": len(self.cfds),
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        counts = self.counts()
        return (
            f"{self.algorithm}: {counts['total']} CFDs "
            f"({counts['constant']} constant, {counts['variable']} variable) "
            f"on |r|={self.relation_size}, arity={self.relation_arity}, "
            f"k={self.min_support} in {self.elapsed_seconds:.3f}s"
        )


def choose_algorithm(relation: Relation, min_support: int) -> str:
    """The paper's guidance (Section 8) as an automatic selection rule."""
    if relation.arity > AUTO_ARITY_CUTOFF:
        return "fastcfd"
    if relation.n_rows and min_support / relation.n_rows >= AUTO_SUPPORT_RATIO_CUTOFF:
        return "ctane"
    return "fastcfd"


def discover(
    relation: Relation,
    min_support: int = 1,
    *,
    algorithm: str = "auto",
    max_lhs_size: Optional[int] = None,
    **options: object,
) -> DiscoveryResult:
    """Discover a canonical cover of minimal k-frequent CFDs.

    Parameters
    ----------
    relation:
        The sample relation ``r``.
    min_support:
        The support threshold ``k``.
    algorithm:
        One of ``"cfdminer"`` (constant CFDs only), ``"ctane"``, ``"fastcfd"``,
        ``"naivefast"`` or ``"auto"`` (paper guidance).
    max_lhs_size:
        Optional cap on the LHS size.
    options:
        Forwarded to the chosen algorithm's constructor.

    Returns
    -------
    DiscoveryResult
    """
    if algorithm not in ALGORITHMS:
        raise DiscoveryError(
            f"unknown algorithm {algorithm!r}; choose one of {ALGORITHMS}"
        )
    if algorithm == "auto":
        algorithm = choose_algorithm(relation, min_support)

    start = time.perf_counter()
    extra: Dict[str, object] = {}
    if algorithm == "cfdminer":
        miner = CFDMiner(relation, min_support, max_lhs_size=max_lhs_size, **options)
        cfds = miner.discover()
    elif algorithm == "ctane":
        ctane = CTane(relation, min_support, max_lhs_size=max_lhs_size, **options)
        cfds = ctane.discover()
        extra["candidates_checked"] = ctane.candidates_checked
        extra["elements_generated"] = ctane.elements_generated
    elif algorithm == "fastcfd":
        cfds = FastCFD(
            relation, min_support, max_lhs_size=max_lhs_size, **options
        ).discover()
    elif algorithm == "naivefast":
        cfds = NaiveFast(
            relation, min_support, max_lhs_size=max_lhs_size, **options
        ).discover()
    else:  # pragma: no cover - exhaustiveness guard
        raise DiscoveryError(f"unhandled algorithm {algorithm!r}")
    elapsed = time.perf_counter() - start

    return DiscoveryResult(
        algorithm=algorithm,
        cfds=list(cfds),
        min_support=min_support,
        elapsed_seconds=elapsed,
        relation_size=relation.n_rows,
        relation_arity=relation.arity,
        extra=extra,
    )


__all__ = ["ALGORITHMS", "DiscoveryResult", "choose_algorithm", "discover"]
