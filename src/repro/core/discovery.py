"""Backward-compatible front-end for CFD discovery (thin shim).

The canonical entry point now lives in :mod:`repro.api`: an algorithm
registry with capability metadata, a frozen
:class:`~repro.api.request.DiscoveryRequest` and a
:class:`~repro.api.profiler.Profiler` session that caches per-relation
structures across runs.  This module keeps the seed API — :func:`discover`,
:func:`choose_algorithm`, :data:`ALGORITHMS` and
:class:`~repro.api.result.DiscoveryResult` — as thin delegating wrappers so
existing callers and scripts keep working unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.api import (
    AUTO_ARITY_CUTOFF,
    AUTO_SUPPORT_RATIO_CUTOFF,
    DiscoveryRequest,
    DiscoveryResult,
    REGISTRY,
    execute,
)
from repro.relational.relation import Relation

#: Algorithms accepted by :func:`discover` (registry names plus ``"auto"``).
ALGORITHMS = REGISTRY.choices()


def choose_algorithm(relation: Relation, min_support: int) -> str:
    """The paper's guidance (Section 8) as an automatic selection rule.

    Delegates to the registry's capability-driven dispatch
    (:meth:`repro.api.registry.AlgorithmRegistry.select`).
    """
    return REGISTRY.select(relation, DiscoveryRequest(min_support=min_support))


def discover(
    relation: Relation,
    min_support: int = 1,
    *,
    algorithm: str = "auto",
    max_lhs_size: Optional[int] = None,
    **options: object,
) -> DiscoveryResult:
    """Discover a canonical cover of minimal k-frequent CFDs.

    Parameters
    ----------
    relation:
        The sample relation ``r``.
    min_support:
        The support threshold ``k``.
    algorithm:
        One of ``"cfdminer"`` (constant CFDs only), ``"ctane"``, ``"fastcfd"``,
        ``"naivefast"`` or ``"auto"`` (paper guidance via the registry).
    max_lhs_size:
        Optional cap on the LHS size.
    options:
        Forwarded to the chosen algorithm's constructor.

    Returns
    -------
    DiscoveryResult
    """
    request = DiscoveryRequest(
        min_support=min_support,
        algorithm=algorithm,
        max_lhs_size=max_lhs_size,
        options=options,
    )
    return execute(relation, request)


__all__ = [
    "ALGORITHMS",
    "AUTO_ARITY_CUTOFF",
    "AUTO_SUPPORT_RATIO_CUTOFF",
    "DiscoveryResult",
    "choose_algorithm",
    "discover",
]
