"""Pattern values and pattern tuples (Section 2.1 of the paper).

A *pattern value* is either a constant from an attribute domain or the
unnamed variable ``_`` (the singleton :data:`WILDCARD`), which matches any
value.  A *pattern tuple* assigns a pattern value to each attribute of a CFD.

The module also implements the match order ``≼`` of Section 2.1.2:

* ``v ≼ w`` for constants iff ``v == w``;
* ``v ≼ _`` for every value ``v`` (the wildcard is the most general pattern).

The order extends componentwise to tuples; ``more general`` means higher in
this order.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import PatternError


class _Wildcard:
    """The unnamed variable ``_`` of CFD pattern tuples (a singleton)."""

    _instance: Optional["_Wildcard"] = None
    __slots__ = ()

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"

    def __str__(self) -> str:
        return "_"

    def __reduce__(self):
        return (_Wildcard, ())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Wildcard)

    def __hash__(self) -> int:
        return hash("__repro_wildcard__")


#: The unnamed variable "_" used in pattern tuples.
WILDCARD = _Wildcard()

PatternValue = Union[Hashable, _Wildcard]


def is_wildcard(value: object) -> bool:
    """``True`` iff ``value`` is the unnamed variable ``_``."""
    return isinstance(value, _Wildcard)


def value_matches(value: Hashable, pattern_value: PatternValue) -> bool:
    """``value ≼ pattern_value``: the data value matches the pattern value."""
    return is_wildcard(pattern_value) or value == pattern_value


def pattern_leq(first: PatternValue, second: PatternValue) -> bool:
    """The order ``first ≼ second`` on pattern values.

    ``first ≼ second`` holds iff ``first == second`` or ``second`` is ``_``.
    """
    if is_wildcard(second):
        return True
    if is_wildcard(first):
        return False
    return first == second


def pattern_str(value: PatternValue) -> str:
    """Human-readable rendering of a pattern value."""
    return "_" if is_wildcard(value) else str(value)


class PatternTuple:
    """An assignment of pattern values to a fixed, ordered attribute list.

    Pattern tuples are immutable and hashable.  The attribute order is part of
    the identity of the tuple; CFDs canonicalise LHS attributes in schema
    order so equality of CFDs is order-insensitive at that level.

    Examples
    --------
    >>> tp = PatternTuple(("CC", "AC"), ("01", WILDCARD))
    >>> tp["CC"]
    '01'
    >>> tp.is_constant
    False
    >>> str(tp)
    '(01, _)'
    """

    __slots__ = ("_attributes", "_values")

    def __init__(
        self,
        attributes: Sequence[str],
        values: Sequence[PatternValue],
    ):
        attributes = tuple(attributes)
        values = tuple(values)
        if len(attributes) != len(values):
            raise PatternError(
                f"{len(attributes)} attributes but {len(values)} pattern values"
            )
        if len(set(attributes)) != len(attributes):
            raise PatternError(f"duplicate attributes in pattern: {attributes}")
        self._attributes = attributes
        self._values = values

    # ------------------------------------------------------------------ #
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, PatternValue]) -> "PatternTuple":
        """Build a pattern tuple from an ``{attribute: pattern value}`` dict."""
        return cls(tuple(mapping.keys()), tuple(mapping.values()))

    @classmethod
    def all_wildcards(cls, attributes: Sequence[str]) -> "PatternTuple":
        """The most general pattern ``(_, …, _)`` over ``attributes``."""
        return cls(tuple(attributes), tuple(WILDCARD for _ in attributes))

    # ------------------------------------------------------------------ #
    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    @property
    def values(self) -> Tuple[PatternValue, ...]:
        return self._values

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Tuple[str, PatternValue]]:
        return iter(zip(self._attributes, self._values))

    def __getitem__(self, attribute: str) -> PatternValue:
        try:
            return self._values[self._attributes.index(attribute)]
        except ValueError:
            raise PatternError(
                f"attribute {attribute!r} not in pattern over {self._attributes}"
            ) from None

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attributes

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PatternTuple)
            and other._attributes == self._attributes
            and other._values == self._values
        )

    def __hash__(self) -> int:
        return hash((self._attributes, self._values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{attr}={pattern_str(value)}" for attr, value in self
        )
        return f"PatternTuple({pairs})"

    def __str__(self) -> str:
        return "(" + ", ".join(pattern_str(v) for v in self._values) + ")"

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, PatternValue]:
        """The pattern as an ``{attribute: pattern value}`` dictionary."""
        return dict(zip(self._attributes, self._values))

    @property
    def is_constant(self) -> bool:
        """``True`` iff every pattern value is a constant."""
        return all(not is_wildcard(v) for v in self._values)

    @property
    def is_all_wildcards(self) -> bool:
        """``True`` iff every pattern value is the unnamed variable."""
        return all(is_wildcard(v) for v in self._values)

    @property
    def constant_attributes(self) -> Tuple[str, ...]:
        """Attributes carrying a constant pattern value."""
        return tuple(a for a, v in self if not is_wildcard(v))

    @property
    def wildcard_attributes(self) -> Tuple[str, ...]:
        """Attributes carrying the unnamed variable."""
        return tuple(a for a, v in self if is_wildcard(v))

    def restrict(self, attributes: Iterable[str]) -> "PatternTuple":
        """The pattern restricted to ``attributes`` (paper: ``tp[Y]``)."""
        attributes = tuple(attributes)
        mapping = self.as_dict()
        missing = [a for a in attributes if a not in mapping]
        if missing:
            raise PatternError(f"attributes {missing} not in pattern")
        return PatternTuple(attributes, tuple(mapping[a] for a in attributes))

    def constant_part(self) -> "PatternTuple":
        """The restriction to the constant attributes (paper: ``(Xᶜ, tᶜp)``)."""
        return self.restrict(self.constant_attributes)

    def with_value(self, attribute: str, value: PatternValue) -> "PatternTuple":
        """A copy with the pattern value of ``attribute`` replaced."""
        mapping = self.as_dict()
        if attribute not in mapping:
            raise PatternError(f"attribute {attribute!r} not in pattern")
        mapping[attribute] = value
        return PatternTuple.from_mapping(mapping)

    def generalise(self, attribute: str) -> "PatternTuple":
        """Upgrade the constant on ``attribute`` to the unnamed variable."""
        return self.with_value(attribute, WILDCARD)

    def matches_row(self, row: Mapping[str, Hashable]) -> bool:
        """``True`` iff the data row matches every pattern value."""
        return all(value_matches(row[attr], value) for attr, value in self)

    def leq(self, other: "PatternTuple") -> bool:
        """Tuple order ``self ≼ other`` (``other`` is at least as general).

        Both tuples must range over the same attribute set (any order).
        """
        mapping = other.as_dict()
        if set(mapping) != set(self._attributes):
            raise PatternError("pattern tuples range over different attributes")
        return all(pattern_leq(value, mapping[attr]) for attr, value in self)

    def strictly_more_general_than(self, other: "PatternTuple") -> bool:
        """``other ≺ self``: ``self`` is strictly more general."""
        return other.leq(self) and not self.leq(other)

    def generalisations(self) -> Iterator["PatternTuple"]:
        """All single-step generalisations (one constant upgraded to ``_``)."""
        for attr, value in self:
            if not is_wildcard(value):
                yield self.generalise(attr)


__all__ = [
    "WILDCARD",
    "PatternValue",
    "PatternTuple",
    "is_wildcard",
    "value_matches",
    "pattern_leq",
    "pattern_str",
]
