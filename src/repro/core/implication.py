"""Implication analysis and cover minimisation.

The paper lists "the use of CFD inference in discovery, to eliminate CFDs that
are entailed by those already found" as future work (Section 8).  This module
provides the pieces of that programme that are tractable and useful in
practice:

* :func:`implies_constant` — sound and complete implication for *constant*
  CFDs against a set of constant CFDs (a chase-style closure over constant
  patterns);
* :func:`variable_cfd_subsumed_by_constants` — the specific redundancy pattern
  that distinguishes the outputs of CTANE and FastCFD: a variable CFD whose
  matching tuples are forced to a single RHS constant by a constant CFD of the
  cover is logically redundant;
* :func:`minimise_constant_cover` — greedy removal of implied constant CFDs;
* :func:`covers_equivalent_on` — an *empirical* equivalence check of two
  covers on a reference relation (used by tests and examples to compare
  algorithm outputs without solving the coNP-complete general implication
  problem).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import WILDCARD, is_wildcard, value_matches
from repro.core.validation import satisfies
from repro.relational.relation import Relation


def _constant_lhs(cfd: CFD) -> Dict[str, Hashable]:
    """The constant LHS pattern of a CFD as an ``{attribute: value}`` mapping."""
    return {
        attribute: value
        for attribute, value in zip(cfd.lhs, cfd.lhs_pattern)
        if not is_wildcard(value)
    }


def implies_constant(premises: Iterable[CFD], conclusion: CFD) -> bool:
    """``True`` iff the constant CFDs in ``premises`` imply ``conclusion``.

    ``conclusion`` must be a constant CFD.  The check performs a chase over a
    single symbolic tuple: start with the conclusion's LHS pattern as known
    cell values and repeatedly fire premise constant CFDs whose LHS is
    contained in the known values; the conclusion is implied iff the chase
    derives its RHS value (or derives a contradiction, in which case the
    premises are unsatisfiable together with the LHS pattern and the
    implication holds vacuously).
    """
    if not conclusion.is_constant:
        raise ValueError("implies_constant expects a constant CFD conclusion")
    constant_premises = [cfd for cfd in premises if cfd.is_constant]
    known: Dict[str, Hashable] = dict(_constant_lhs(conclusion))
    changed = True
    while changed:
        changed = False
        for premise in constant_premises:
            lhs = _constant_lhs(premise)
            if any(known.get(a, _MISSING) != v for a, v in lhs.items()):
                continue
            if any(a not in known for a in lhs):
                continue
            current = known.get(premise.rhs, _MISSING)
            if current is _MISSING:
                known[premise.rhs] = premise.rhs_pattern
                changed = True
            elif current != premise.rhs_pattern:
                return True  # contradiction: the LHS pattern is unsatisfiable
    return known.get(conclusion.rhs, _MISSING) == conclusion.rhs_pattern


_MISSING = object()


def variable_cfd_subsumed_by_constants(cfd: CFD, cover: Iterable[CFD]) -> bool:
    """``True`` iff a variable CFD is implied by a constant CFD of ``cover``.

    A variable CFD ``(X → A, (tp ‖ _))`` is implied by a constant CFD
    ``(Y → A, (sp ‖ a))`` whenever ``(Y, sp)`` is contained in the constant
    part of ``(X, tp)``: every tuple matching ``tp`` then has ``A = a``, so
    any two of them trivially agree on ``A``.  This is exactly the redundancy
    FastCFD exploits when it emits a constant CFD instead of the
    corresponding variable one (base case (a) of FindMin).
    """
    if not cfd.is_variable:
        return False
    constant_lhs = _constant_lhs(cfd)
    for other in cover:
        if not other.is_constant or other.rhs != cfd.rhs:
            continue
        other_lhs = _constant_lhs(other)
        if all(constant_lhs.get(a, _MISSING) == v for a, v in other_lhs.items()):
            return True
    return False


def is_implied_by_cover(cfd: CFD, cover: Iterable[CFD]) -> bool:
    """A *sound* (not complete) implication test of one CFD against a cover.

    Returns ``True`` when the CFD is a member of the cover, when it is a
    constant CFD implied by the cover's constant CFDs, or when it is a
    variable CFD subsumed by a constant CFD of the cover.  A ``False`` answer
    therefore means "could not prove implication", not "not implied".
    """
    cover = list(cover)
    if cfd in cover:
        return True
    if cfd.is_constant:
        return implies_constant(cover, cfd)
    return variable_cfd_subsumed_by_constants(cfd, cover)


def minimise_constant_cover(cfds: Sequence[CFD]) -> List[CFD]:
    """Greedily remove constant CFDs implied by the remaining ones.

    Variable CFDs are kept untouched.  The result is order-independent up to
    the greedy choice (CFDs are considered largest-LHS first so that specific
    rules get eliminated in favour of general ones).
    """
    constants = [cfd for cfd in cfds if cfd.is_constant]
    variables = [cfd for cfd in cfds if not cfd.is_constant]
    kept: List[CFD] = list(
        sorted(constants, key=lambda c: (len(c.lhs), str(c)))
    )
    for cfd in sorted(constants, key=lambda c: (-len(c.lhs), str(c))):
        remaining = [c for c in kept if c != cfd]
        if implies_constant(remaining, cfd):
            kept = remaining
    return kept + variables


def covers_equivalent_on(
    relation: Relation, first: Iterable[CFD], second: Iterable[CFD]
) -> bool:
    """Empirical cover comparison: both covers hold on the same relation.

    This is the practical stand-in for logical equivalence used in examples:
    two canonical covers discovered from the *same* relation always both hold
    on it, so the function additionally requires that each cover's CFDs are
    satisfied — it exists mainly to sanity-check covers against relations they
    were *not* mined from (e.g. a repaired relation).
    """
    first = list(first)
    second = list(second)
    return all(satisfies(relation, cfd) for cfd in first) and all(
        satisfies(relation, cfd) for cfd in second
    )


__all__ = [
    "implies_constant",
    "variable_cfd_subsumed_by_constants",
    "is_implied_by_cover",
    "minimise_constant_cover",
    "covers_equivalent_on",
]
