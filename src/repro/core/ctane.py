"""CTANE: levelwise discovery of general minimal CFDs (Section 4 of the paper).

CTANE traverses an attribute-set/pattern lattice whose elements are pairs
``(X, sp)`` of an attribute set and a pattern over it (constants and the
unnamed variable ``_``).  Level ``ℓ`` holds the elements with ``|X| = ℓ``.
For every element the algorithm maintains a candidate-RHS set ``C⁺(X, sp)``;
a CFD ``(X \\ {A} → A, (sp[X \\ {A}] ‖ sp[A]))`` is emitted when it holds on
the relation and ``(A, sp[A])`` survived in ``C⁺(X, sp)`` — by Lemma 2 of the
paper this guarantees minimality.  The four steps per level are exactly the
paper's:

1. ``C⁺(X, sp) = ⋂_{B ∈ X} C⁺(X \\ {B}, sp[X \\ {B}])`` (plus the structural
   constraint that ``A ∈ X`` forces ``cA = sp[A]``);
2. validity checks and emission, followed by the ``C⁺`` updates of step 2(c);
3. removal of elements with an empty ``C⁺``;
4. generation of the next level by prefix join, keeping only candidates whose
   constant part is k-frequent and whose immediate sub-elements all survived.

Validity is checked directly on the *pattern partition* (every equivalence
class of the LHS-pattern partition must be constant on the RHS and match the
RHS pattern); the TANE class-count comparison is not sound for constant RHS
patterns, see DESIGN.md.

Pattern partitions are maintained *incrementally*, as Section 4.4 of the
paper prescribes: every lattice element caches its ``Π(X, sp)`` as a label
array (:class:`~repro.relational.partition.Partition`), and a level-ℓ element
derives its partition with a single linear-time :meth:`Partition.product`
from the partition of its generating level-(ℓ−1) element and the cached
single-attribute partition of the joined-in ``(attribute, pattern-value)``
item.  The same partition answers both the k-frequency check of step 4
(``covered_rows``) and the validity check of step 2, which reduces to O(1)
count comparisons between the element's partition and its LHS parent's
(``n_classes`` for a wildcard RHS, ``covered_rows`` for a constant RHS — see
:meth:`CTane._cfd_valid_partition` and DESIGN.md for the soundness argument),
so no step re-scans the encoded matrix per candidate.
``incremental_partitions=False`` restores the original fresh-boolean-mask
scans; it exists for the perf-benchmark ablation
(``benchmarks/bench_perf_suite.py``) and as an executable specification.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro import obs
from repro.core.cfd import CFD
from repro.core.minimality import is_minimal
from repro.core.pattern import WILDCARD, is_wildcard, pattern_leq
from repro.exceptions import DiscoveryError
from repro.obs.names import SPAN_ENGINE_LEVEL
from repro.relational.partition import Partition, attribute_partition
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only (import would be circular)
    from repro.api.profiler import Profiler

PatternCode = object  # an int value code or WILDCARD
Element = Tuple[Tuple[int, ...], Tuple[PatternCode, ...]]
CandidateItem = Tuple[int, PatternCode]


class CTane:
    """Levelwise discovery of a canonical cover of minimal k-frequent CFDs.

    Parameters
    ----------
    relation:
        The sample relation ``r``.
    min_support:
        The support threshold ``k`` (at least 1).
    max_lhs_size:
        Optional cap on the LHS size of emitted CFDs (``None``: unbounded,
        i.e. the lattice is explored up to the full arity).
    cplus_pruning:
        Keep the ``C⁺``-based pruning on (the algorithm of the paper).  Turning
        it off keeps every lattice element alive and emits via definition-level
        minimality checks instead; it exists for the pruning ablation
        benchmark.
    incremental_partitions:
        Maintain pattern partitions incrementally across lattice levels (the
        paper's Section 4.4) and run vectorized validity/support checks on
        them.  ``False`` restores the original per-candidate matrix re-scans;
        output is identical either way (the perf suite and the test-suite
        both assert this).
    verify_minimality:
        Re-check every emitted CFD against the minimality definition and drop
        (and count) any failure.  Off by default; the test-suite validates the
        raw output against the brute-force oracle.
    session:
        Optional :class:`~repro.api.profiler.Profiler` bound to ``relation``.
        When given, single-attribute wildcard partitions are served from (and
        recorded in) the session's ``attribute_partition`` cache, so TANE,
        CTANE and the cleaning layer share one partition substrate across a
        discovery session.
    progress:
        Optional callback ``progress(stage, level, arity)`` invoked once per
        lattice level (for long-run feedback on large relations).
    checkpoint:
        Optional checkpoint handle with ``load() -> Optional[state]``,
        ``save(state)`` and ``clear()``.  When given (or derivable from the
        session via :meth:`~repro.api.profiler.Profiler.ctane_checkpoint`),
        the traversal snapshots its loop frontier at the top of every level
        and a re-run after a crash/kill/deadline resumes from the last
        completed level instead of from scratch — with byte-identical output,
        since the snapshot captures everything the remaining levels read.
        :attr:`resumed_level` / :attr:`resume_levels_skipped` record whether
        (and how far) a run warm-resumed.
    """

    def __init__(
        self,
        relation: Relation,
        min_support: int = 1,
        *,
        max_lhs_size: Optional[int] = None,
        cplus_pruning: bool = True,
        incremental_partitions: bool = True,
        verify_minimality: bool = False,
        session: Optional["Profiler"] = None,
        progress: Optional[Callable[[str, int, int], None]] = None,
        checkpoint: Optional[object] = None,
    ):
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if (
            session is not None
            and session.relation is not relation
            and session.relation != relation
        ):
            raise DiscoveryError("the provided session does not profile this relation")
        self._relation = relation
        self._min_support = min_support
        self._max_lhs_size = max_lhs_size
        self._cplus_pruning = cplus_pruning
        self._incremental = incremental_partitions
        self._verify_minimality = verify_minimality
        self._session = session
        self._progress = progress
        self._matrix = relation.encoded_matrix()
        self._arity = relation.arity
        self._n_rows = relation.n_rows
        # Column masks shared by the legacy scan paths: sibling candidates
        # with a common constant item reuse one mask instead of recomputing
        # it per candidate during level generation.
        self._column_masks: Dict[Tuple[int, int], np.ndarray] = {}
        self._all_rows_partition: Optional[Partition] = None
        # Per-attribute code bound (codes are 0..span-1), for the mixed-radix
        # pairing of refine_by_column.
        self._column_spans: List[int] = [
            int(self._matrix[:, a].max()) + 1 if self._n_rows else 1
            for a in range(self._arity)
        ]
        #: statistics filled by :meth:`discover`
        self.candidates_checked = 0
        self.elements_generated = 0
        self.non_minimal_dropped = 0
        #: resume bookkeeping: the level a checkpointed run restarted at, and
        #: how many completed levels it skipped (0 = cold run).
        self.resumed_level: Optional[int] = None
        self.resume_levels_skipped = 0
        self._checkpoint = checkpoint
        if self._checkpoint is None and session is not None:
            factory = getattr(session, "ctane_checkpoint", None)
            if factory is not None:
                self._checkpoint = factory(self._checkpoint_params())

    def _checkpoint_params(self) -> Dict[str, object]:
        """The request shape a checkpoint is keyed by (resume safety: a
        checkpoint only ever feeds a traversal with identical parameters)."""
        return {
            "min_support": int(self._min_support),
            "max_lhs_size": self._max_lhs_size,
            "cplus_pruning": bool(self._cplus_pruning),
            "incremental_partitions": bool(self._incremental),
            "verify_minimality": bool(self._verify_minimality),
        }

    # ------------------------------------------------------------------ #
    # the partition substrate
    # ------------------------------------------------------------------ #
    #: Cap on the number of cached column masks (legacy scan paths only);
    #: each entry is an n_rows boolean array, so the cache stays bounded even
    #: at min_support=1 on high-cardinality columns.
    _MASK_CACHE_LIMIT = 4096

    def _column_mask(self, attribute: int, code: int) -> np.ndarray:
        """``matrix[:, attribute] == code``, cached per ``(attribute, code)``.

        Sibling candidates sharing a constant item reuse one mask instead of
        recomputing it.  Only the legacy (non-incremental) scan paths use
        full-relation masks; the incremental path stores the compressed
        partitions and compares gathered column values directly.
        """
        key = (attribute, code)
        mask = self._column_masks.get(key)
        if mask is None:
            mask = self._matrix[:, attribute] == code
            if len(self._column_masks) < self._MASK_CACHE_LIMIT:
                self._column_masks[key] = mask
        return mask

    def _empty_pattern_partition(self) -> Partition:
        """``Π(∅, ())``: every row in one class."""
        if self._all_rows_partition is None:
            if self._session is not None:
                self._all_rows_partition = self._session.attribute_partition(())
            else:
                self._all_rows_partition = attribute_partition(self._matrix, [])
        return self._all_rows_partition

    def _single_partition(self, attribute: int, code: PatternCode) -> Partition:
        """``Π({A}, (code,))``, the partition of one level-1 element.

        Wildcard partitions come from (and warm) the session's shared
        ``attribute_partition`` cache when one is given.  Constant partitions
        store only their covered rows (support-sized), so level 1 holds at
        most one relation's worth of row indices per attribute.  Each level-1
        element is distinct, so no local memoisation is needed.
        """
        if is_wildcard(code):
            if self._session is not None:
                return self._session.attribute_partition((attribute,))
            return attribute_partition(self._matrix, [attribute])
        if self._session is not None:
            key = ((attribute,), (int(code),))
            cached = self._session.cached_pattern_partition(key)
            if cached is not None:
                return cached
            partition = Partition.from_mask(
                self._matrix[:, attribute] == int(code), self._n_rows
            )
            self._session.store_pattern_partition(key, partition)
            return partition
        return Partition.from_mask(
            self._matrix[:, attribute] == int(code), self._n_rows
        )

    # ------------------------------------------------------------------ #
    # validity and support checks
    # ------------------------------------------------------------------ #
    def _constant_support(self, attrs: Sequence[int], pattern: Sequence[PatternCode]) -> int:
        """Number of tuples matching the constants of ``pattern`` on ``attrs``.

        Legacy scan used by ``incremental_partitions=False``; the incremental
        path reads ``covered_rows`` off the candidate's partition instead.
        """
        mask = np.ones(self._n_rows, dtype=bool)
        for attribute, code in zip(attrs, pattern):
            if not is_wildcard(code):
                mask &= self._column_mask(attribute, int(code))
        return int(mask.sum())

    def _cfd_valid_scan(
        self,
        lhs_attrs: Sequence[int],
        lhs_pattern: Sequence[PatternCode],
        rhs: int,
        rhs_code: PatternCode,
    ) -> bool:
        """Legacy validity check: fresh masks and Python grouping per candidate."""
        mask = np.ones(self._n_rows, dtype=bool)
        wildcard_attrs: List[int] = []
        for attribute, code in zip(lhs_attrs, lhs_pattern):
            if is_wildcard(code):
                wildcard_attrs.append(attribute)
            else:
                mask &= self._column_mask(attribute, int(code))
        rows = np.nonzero(mask)[0]
        if rows.size == 0:
            return True
        rhs_column = self._matrix[rows, rhs]
        if not is_wildcard(rhs_code):
            if not (rhs_column == int(rhs_code)).all():
                return False
        if not wildcard_attrs:
            return bool((rhs_column == rhs_column[0]).all())
        groups: Dict[Tuple[int, ...], int] = {}
        keys = self._matrix[np.ix_(rows, wildcard_attrs)]
        for key, value in zip(map(tuple, keys.tolist()), rhs_column.tolist()):
            previous = groups.setdefault(key, value)
            if previous != value:
                return False
        return True

    @staticmethod
    def _cfd_valid_partition(
        lhs_partition: Partition,
        element_partition: Partition,
        rhs_code: PatternCode,
    ) -> bool:
        """Validity as O(1) count comparisons on cached pattern partitions.

        ``lhs_partition`` is ``Π(X \\ {A}, sp')`` and ``element_partition``
        the element's own ``Π(X, sp)``.

        * Wildcard RHS: both partitions cover the same rows (they share the
          constants), and the element refines the LHS by additionally
          grouping on ``A`` — every LHS class is constant on ``A`` iff no
          class splits, i.e. iff the class counts agree (TANE's test, lifted
          to pattern partitions).
        * Constant RHS ``A = c``: the element's partition covers exactly the
          LHS-matching rows that also satisfy ``A = c``, so the CFD holds iff
          the covered-row counts agree.  (The plain class-count comparison is
          *not* sound here, see DESIGN.md — the covered counts are.)
        """
        if not is_wildcard(rhs_code):
            return lhs_partition.covered_rows == element_partition.covered_rows
        return lhs_partition.n_classes == element_partition.n_classes

    # ------------------------------------------------------------------ #
    def _decode_cfd(
        self,
        lhs_attrs: Sequence[int],
        lhs_pattern: Sequence[PatternCode],
        rhs: int,
        rhs_code: PatternCode,
    ) -> CFD:
        schema = self._relation.schema
        encoding = self._relation.encoding
        names = tuple(schema.name_of(a) for a in lhs_attrs)
        values = tuple(
            WILDCARD if is_wildcard(code) else encoding.decode_value(attribute, int(code))
            for attribute, code in zip(lhs_attrs, lhs_pattern)
        )
        rhs_value = (
            WILDCARD if is_wildcard(rhs_code) else encoding.decode_value(rhs, int(rhs_code))
        )
        return CFD(names, values, schema.name_of(rhs), rhs_value)

    # ------------------------------------------------------------------ #
    # the levelwise traversal
    # ------------------------------------------------------------------ #
    def _initial_level(self) -> List[Element]:
        """Level 1: one element per attribute/wildcard and per frequent constant."""
        level: List[Element] = []
        for attribute in range(self._arity):
            level.append(((attribute,), (WILDCARD,)))
            column = self._matrix[:, attribute]
            codes, counts = np.unique(column, return_counts=True)
            for code, count in zip(codes.tolist(), counts.tolist()):
                if count >= self._min_support:
                    level.append(((attribute,), (int(code),)))
        return level

    def _intersect_parent_candidates(
        self,
        element: Element,
        parent_cplus: Dict[Element, Set[CandidateItem]],
    ) -> Set[CandidateItem]:
        """Step 1: ``C⁺`` of an element from its immediate sub-elements."""
        attrs, pattern = element
        candidate: Optional[Set[CandidateItem]] = None
        for position in range(len(attrs)):
            parent = (
                attrs[:position] + attrs[position + 1:],
                pattern[:position] + pattern[position + 1:],
            )
            parent_set = parent_cplus.get(parent)
            if parent_set is None:
                return set()
            candidate = set(parent_set) if candidate is None else candidate & parent_set
            if not candidate:
                return set()
        assert candidate is not None
        # Structural constraint (condition 1 of the C+ definition): for an
        # attribute inside X the only admissible pattern value is sp[A].
        filtered: Set[CandidateItem] = set()
        for attribute, code in candidate:
            if attribute in attrs:
                if code == pattern[attrs.index(attribute)]:
                    filtered.add((attribute, code))
            else:
                filtered.add((attribute, code))
        return filtered

    @staticmethod
    def _generality_rank(element: Element) -> Tuple:
        """Sort key placing more general patterns (more wildcards) first."""
        attrs, pattern = element
        constants = sum(0 if is_wildcard(code) else 1 for code in pattern)
        rendering = tuple(
            "_" if is_wildcard(code) else f"c{code}" for code in pattern
        )
        return (attrs, constants, rendering)

    def discover(self) -> List[CFD]:
        """Run CTANE and return the canonical cover of minimal k-frequent CFDs."""
        results: List[CFD] = []
        if self._n_rows < self._min_support:
            # No pattern (not even the all-wildcard one) can reach the support
            # threshold, so the canonical cover is empty.
            return results
        incremental = self._incremental
        state = None
        if self._checkpoint is not None:
            state = self._checkpoint.load()
            if state is not None and bool(state.get("incremental")) != incremental:
                state = None  # a checkpoint of the other traversal mode
        if state is not None:
            # Warm resume: restore the loop frontier the checkpoint captured
            # at the top of level ``size`` — everything before it is done.
            size = int(state["size"])
            level: List[Element] = list(state["level"])
            parent_cplus: Dict[Element, Set[CandidateItem]] = state["parent_cplus"]
            parent_partitions: Dict[Element, Partition] = state.get(
                "parent_partitions", {}
            )
            level_partitions: Dict[Element, Partition] = state.get(
                "level_partitions", {}
            )
            results = list(state["results"])
            counters = state.get("counters", {})
            self.candidates_checked += int(counters.get("candidates_checked", 0))
            self.elements_generated += int(counters.get("elements_generated", 0))
            self.non_minimal_dropped += int(counters.get("non_minimal_dropped", 0))
            self.resumed_level = size
            self.resume_levels_skipped = size - 1
        else:
            level = self._initial_level()
            self.elements_generated += len(level)

            empty_element: Element = ((), ())
            base_candidates: Set[CandidateItem] = set()
            for attrs, pattern in level:
                base_candidates.add((attrs[0], pattern[0]))
            parent_cplus = {empty_element: base_candidates}

            parent_partitions = {}
            level_partitions = {}
            if incremental:
                parent_partitions[empty_element] = self._empty_pattern_partition()
                for element in level:
                    level_partitions[element] = self._single_partition(
                        element[0][0], element[1][0]
                    )
            size = 1

        while level:
            # One span per lattice level: the per-level cost profile is
            # the trace's engine-side waterfall (and a per-phase training
            # row for the cost model).
            with obs.get_tracer().start_span(
                SPAN_ENGINE_LEVEL, level=size, elements=len(level)
            ):
                if self._progress is not None:
                    self._progress("ctane:level", size, self._arity)
                if (
                    self._checkpoint is not None
                    and size > 1
                    and size != self.resumed_level
                ):
                    # Snapshot the frontier *before* processing the level: every
                    # container step 2 mutates is copied, so the saved state is
                    # exactly what a resumed run needs to replay this level.
                    self._checkpoint.save(
                        {
                            "size": size,
                            "incremental": incremental,
                            "level": list(level),
                            "parent_cplus": {
                                element: set(items)
                                for element, items in parent_cplus.items()
                            },
                            "parent_partitions": dict(parent_partitions),
                            "level_partitions": dict(level_partitions),
                            "results": list(results),
                            "counters": {
                                "candidates_checked": self.candidates_checked,
                                "elements_generated": self.elements_generated,
                                "non_minimal_dropped": self.non_minimal_dropped,
                            },
                        }
                    )
                # --- Step 1: candidate RHS sets ------------------------------ #
                cplus: Dict[Element, Set[CandidateItem]] = {}
                for element in level:
                    cplus[element] = self._intersect_parent_candidates(element, parent_cplus)

                # Group elements by attribute set: the step-2(c) update only ever
                # touches elements with the same attribute set.
                by_attrs: Dict[Tuple[int, ...], List[Element]] = {}
                for element in level:
                    by_attrs.setdefault(element[0], []).append(element)

                # --- Step 2: validity checks and emission -------------------- #
                for element in sorted(level, key=self._generality_rank):
                    attrs, pattern = element
                    candidates = cplus[element]
                    if not candidates:
                        continue
                    for position, rhs in enumerate(attrs):
                        rhs_code = pattern[position]
                        if (rhs, rhs_code) not in candidates:
                            continue
                        lhs_attrs = attrs[:position] + attrs[position + 1:]
                        lhs_pattern = pattern[:position] + pattern[position + 1:]
                        self.candidates_checked += 1
                        if incremental:
                            # The LHS element is an immediate sub-element, so its
                            # partition is cached in the previous level's table.
                            valid = self._cfd_valid_partition(
                                parent_partitions[(lhs_attrs, lhs_pattern)],
                                level_partitions[element],
                                rhs_code,
                            )
                        else:
                            valid = self._cfd_valid_scan(
                                lhs_attrs, lhs_pattern, rhs, rhs_code
                            )
                        if not valid:
                            continue
                        cfd = self._decode_cfd(lhs_attrs, lhs_pattern, rhs, rhs_code)
                        if self._verify_minimality and not is_minimal(
                            self._relation, cfd, k=self._min_support
                        ):
                            self.non_minimal_dropped += 1
                        else:
                            results.append(cfd)
                        # Step 2(c): prune the candidate sets of this element and
                        # of every element with the same attributes, an identical
                        # RHS pattern value and a more specific LHS pattern.
                        for other in by_attrs[attrs]:
                            other_pattern = other[1]
                            if other_pattern[position] != rhs_code:
                                continue
                            if not all(
                                pattern_leq(other_pattern[i], pattern[i])
                                for i in range(len(attrs))
                                if i != position
                            ):
                                continue
                            other_candidates = cplus[other]
                            other_candidates.discard((rhs, rhs_code))
                            if self._cplus_pruning:
                                for item in list(other_candidates):
                                    if item[0] not in attrs:
                                        other_candidates.discard(item)

                # --- Step 3: prune elements with empty candidate sets -------- #
                if self._cplus_pruning:
                    level = [element for element in level if cplus[element]]

                # --- Step 4: generate the next level ------------------------- #
                if self._max_lhs_size is not None and size > self._max_lhs_size:
                    break
                level_index = set(level)
                next_level: Set[Element] = set()
                next_partitions: Dict[Element, Partition] = {}
                prefixes: Dict[Tuple, List[Element]] = {}
                for element in level:
                    attrs, pattern = element
                    key = (attrs[:-1], tuple(map(self._code_key, pattern[:-1])))
                    prefixes.setdefault(key, []).append(element)
                for bucket in prefixes.values():
                    bucket_sorted = sorted(
                        bucket, key=lambda e: (e[0][-1], self._code_key(e[1][-1]))
                    )
                    for i, (x_attrs, x_pattern) in enumerate(bucket_sorted):
                        for y_attrs, y_pattern in bucket_sorted[i + 1:]:
                            if x_attrs[-1] == y_attrs[-1]:
                                continue  # same attribute, different value: no join
                            z_attrs = x_attrs + (y_attrs[-1],)
                            z_pattern = x_pattern + (y_pattern[-1],)
                            candidate: Element = (z_attrs, z_pattern)
                            if candidate in next_level:
                                continue
                            if incremental:
                                # A session caches pattern partitions across runs
                                # (they are support-independent), so a warmed
                                # sweep skips the derivation below entirely.
                                cached = (
                                    self._session.cached_pattern_partition(candidate)
                                    if self._session is not None
                                    else None
                                )
                                if cached is not None:
                                    if cached.covered_rows < self._min_support:
                                        continue
                                    if not self._all_parents_present(
                                        candidate, level_index
                                    ):
                                        continue
                                    next_partitions[candidate] = cached
                                    next_level.add(candidate)
                                    continue
                                # Section 4.4: Π(Z, sp) derives from the
                                # generating element's cached Π(X, sp) by joining
                                # in the single new item — a class split for a
                                # wildcard, a row restriction for a constant.
                                # The constant support (the covered rows after a
                                # restriction) is checked before paying for the
                                # class relabelling.
                                x_partition = level_partitions[(x_attrs, x_pattern)]
                                y_attr = y_attrs[-1]
                                y_code = y_pattern[-1]
                                if is_wildcard(y_code):
                                    if x_partition.covered_rows < self._min_support:
                                        continue
                                    if not self._all_parents_present(
                                        candidate, level_index
                                    ):
                                        continue
                                    partition = x_partition.refine_by_column(
                                        self._matrix[:, y_attr],
                                        self._column_spans[y_attr],
                                    )
                                else:
                                    keep = (
                                        self._matrix[x_partition.covered_index, y_attr]
                                        == int(y_code)
                                    )
                                    if int(np.count_nonzero(keep)) < self._min_support:
                                        continue
                                    if not self._all_parents_present(
                                        candidate, level_index
                                    ):
                                        continue
                                    partition = x_partition.restrict(keep)
                                if self._session is not None:
                                    self._session.store_pattern_partition(
                                        candidate, partition
                                    )
                                next_partitions[candidate] = partition
                            else:
                                if (
                                    self._constant_support(z_attrs, z_pattern)
                                    < self._min_support
                                ):
                                    continue
                                if not self._all_parents_present(candidate, level_index):
                                    continue
                            next_level.add(candidate)
                self.elements_generated += len(next_level)
                parent_cplus = cplus
                if incremental:
                    parent_partitions = level_partitions
                    level_partitions = next_partitions
                level = sorted(next_level, key=self._generality_rank)
                size += 1
        if self._checkpoint is not None:
            self._checkpoint.clear()  # the run completed: nothing to resume
        return results

    # ------------------------------------------------------------------ #
    @staticmethod
    def _code_key(code: PatternCode) -> Tuple[int, int]:
        """A total order on pattern codes (wildcard first, then constants)."""
        return (0, -1) if is_wildcard(code) else (1, int(code))

    @staticmethod
    def _all_parents_present(candidate: Element, level_index: Set[Element]) -> bool:
        """Step 4(b)(iii): every immediate sub-element must be in the level."""
        attrs, pattern = candidate
        for position in range(len(attrs)):
            parent = (
                attrs[:position] + attrs[position + 1:],
                pattern[:position] + pattern[position + 1:],
            )
            if parent not in level_index:
                return False
        return True


def discover_cfds_ctane(
    relation: Relation, min_support: int = 1, **kwargs: object
) -> List[CFD]:
    """Convenience wrapper: run :class:`CTane` on ``relation``."""
    return CTane(relation, min_support, **kwargs).discover()


__all__ = ["CTane", "discover_cfds_ctane"]
