"""CTANE: levelwise discovery of general minimal CFDs (Section 4 of the paper).

CTANE traverses an attribute-set/pattern lattice whose elements are pairs
``(X, sp)`` of an attribute set and a pattern over it (constants and the
unnamed variable ``_``).  Level ``ℓ`` holds the elements with ``|X| = ℓ``.
For every element the algorithm maintains a candidate-RHS set ``C⁺(X, sp)``;
a CFD ``(X \\ {A} → A, (sp[X \\ {A}] ‖ sp[A]))`` is emitted when it holds on
the relation and ``(A, sp[A])`` survived in ``C⁺(X, sp)`` — by Lemma 2 of the
paper this guarantees minimality.  The four steps per level are exactly the
paper's:

1. ``C⁺(X, sp) = ⋂_{B ∈ X} C⁺(X \\ {B}, sp[X \\ {B}])`` (plus the structural
   constraint that ``A ∈ X`` forces ``cA = sp[A]``);
2. validity checks and emission, followed by the ``C⁺`` updates of step 2(c);
3. removal of elements with an empty ``C⁺``;
4. generation of the next level by prefix join, keeping only candidates whose
   constant part is k-frequent and whose immediate sub-elements all survived.

Validity is checked directly on the *pattern partition* (every equivalence
class of the LHS-pattern partition must be constant on the RHS and match the
RHS pattern); the TANE class-count comparison is not sound for constant RHS
patterns, see DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.cfd import CFD
from repro.core.minimality import is_minimal
from repro.core.pattern import WILDCARD, is_wildcard, pattern_leq
from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation

PatternCode = object  # an int value code or WILDCARD
Element = Tuple[Tuple[int, ...], Tuple[PatternCode, ...]]
CandidateItem = Tuple[int, PatternCode]


class CTane:
    """Levelwise discovery of a canonical cover of minimal k-frequent CFDs.

    Parameters
    ----------
    relation:
        The sample relation ``r``.
    min_support:
        The support threshold ``k`` (at least 1).
    max_lhs_size:
        Optional cap on the LHS size of emitted CFDs (``None``: unbounded,
        i.e. the lattice is explored up to the full arity).
    cplus_pruning:
        Keep the ``C⁺``-based pruning on (the algorithm of the paper).  Turning
        it off keeps every lattice element alive and emits via definition-level
        minimality checks instead; it exists for the pruning ablation
        benchmark.
    verify_minimality:
        Re-check every emitted CFD against the minimality definition and drop
        (and count) any failure.  Off by default; the test-suite validates the
        raw output against the brute-force oracle.
    progress:
        Optional callback ``progress(stage, level, arity)`` invoked once per
        lattice level (for long-run feedback on large relations).
    """

    def __init__(
        self,
        relation: Relation,
        min_support: int = 1,
        *,
        max_lhs_size: Optional[int] = None,
        cplus_pruning: bool = True,
        verify_minimality: bool = False,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ):
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        self._relation = relation
        self._min_support = min_support
        self._max_lhs_size = max_lhs_size
        self._cplus_pruning = cplus_pruning
        self._verify_minimality = verify_minimality
        self._progress = progress
        self._matrix = relation.encoded_matrix()
        self._arity = relation.arity
        self._n_rows = relation.n_rows
        #: statistics filled by :meth:`discover`
        self.candidates_checked = 0
        self.elements_generated = 0
        self.non_minimal_dropped = 0

    # ------------------------------------------------------------------ #
    # small helpers on encoded patterns
    # ------------------------------------------------------------------ #
    def _constant_support(self, attrs: Sequence[int], pattern: Sequence[PatternCode]) -> int:
        """Number of tuples matching the constants of ``pattern`` on ``attrs``."""
        mask = np.ones(self._n_rows, dtype=bool)
        for attribute, code in zip(attrs, pattern):
            if not is_wildcard(code):
                mask &= self._matrix[:, attribute] == int(code)
        return int(mask.sum())

    def _cfd_valid(
        self,
        lhs_attrs: Sequence[int],
        lhs_pattern: Sequence[PatternCode],
        rhs: int,
        rhs_code: PatternCode,
    ) -> bool:
        """``r ⊨ (lhs → rhs, (lhs_pattern ‖ rhs_code))`` on the encoded matrix."""
        self.candidates_checked += 1
        mask = np.ones(self._n_rows, dtype=bool)
        wildcard_attrs: List[int] = []
        for attribute, code in zip(lhs_attrs, lhs_pattern):
            if is_wildcard(code):
                wildcard_attrs.append(attribute)
            else:
                mask &= self._matrix[:, attribute] == int(code)
        rows = np.nonzero(mask)[0]
        if rows.size == 0:
            return True
        rhs_column = self._matrix[rows, rhs]
        if not is_wildcard(rhs_code):
            if not (rhs_column == int(rhs_code)).all():
                return False
        if not wildcard_attrs:
            return bool((rhs_column == rhs_column[0]).all())
        groups: Dict[Tuple[int, ...], int] = {}
        keys = self._matrix[np.ix_(rows, wildcard_attrs)]
        for key, value in zip(map(tuple, keys.tolist()), rhs_column.tolist()):
            previous = groups.setdefault(key, value)
            if previous != value:
                return False
        return True

    def _decode_cfd(
        self,
        lhs_attrs: Sequence[int],
        lhs_pattern: Sequence[PatternCode],
        rhs: int,
        rhs_code: PatternCode,
    ) -> CFD:
        schema = self._relation.schema
        encoding = self._relation.encoding
        names = tuple(schema.name_of(a) for a in lhs_attrs)
        values = tuple(
            WILDCARD if is_wildcard(code) else encoding.decode_value(attribute, int(code))
            for attribute, code in zip(lhs_attrs, lhs_pattern)
        )
        rhs_value = (
            WILDCARD if is_wildcard(rhs_code) else encoding.decode_value(rhs, int(rhs_code))
        )
        return CFD(names, values, schema.name_of(rhs), rhs_value)

    # ------------------------------------------------------------------ #
    # the levelwise traversal
    # ------------------------------------------------------------------ #
    def _initial_level(self) -> List[Element]:
        """Level 1: one element per attribute/wildcard and per frequent constant."""
        level: List[Element] = []
        for attribute in range(self._arity):
            level.append(((attribute,), (WILDCARD,)))
            column = self._matrix[:, attribute]
            codes, counts = np.unique(column, return_counts=True)
            for code, count in zip(codes.tolist(), counts.tolist()):
                if count >= self._min_support:
                    level.append(((attribute,), (int(code),)))
        return level

    def _intersect_parent_candidates(
        self,
        element: Element,
        parent_cplus: Dict[Element, Set[CandidateItem]],
    ) -> Set[CandidateItem]:
        """Step 1: ``C⁺`` of an element from its immediate sub-elements."""
        attrs, pattern = element
        candidate: Optional[Set[CandidateItem]] = None
        for position in range(len(attrs)):
            parent = (
                attrs[:position] + attrs[position + 1:],
                pattern[:position] + pattern[position + 1:],
            )
            parent_set = parent_cplus.get(parent)
            if parent_set is None:
                return set()
            candidate = set(parent_set) if candidate is None else candidate & parent_set
            if not candidate:
                return set()
        assert candidate is not None
        # Structural constraint (condition 1 of the C+ definition): for an
        # attribute inside X the only admissible pattern value is sp[A].
        filtered: Set[CandidateItem] = set()
        for attribute, code in candidate:
            if attribute in attrs:
                if code == pattern[attrs.index(attribute)]:
                    filtered.add((attribute, code))
            else:
                filtered.add((attribute, code))
        return filtered

    @staticmethod
    def _generality_rank(element: Element) -> Tuple:
        """Sort key placing more general patterns (more wildcards) first."""
        attrs, pattern = element
        constants = sum(0 if is_wildcard(code) else 1 for code in pattern)
        rendering = tuple(
            "_" if is_wildcard(code) else f"c{code}" for code in pattern
        )
        return (attrs, constants, rendering)

    def discover(self) -> List[CFD]:
        """Run CTANE and return the canonical cover of minimal k-frequent CFDs."""
        results: List[CFD] = []
        if self._n_rows < self._min_support:
            # No pattern (not even the all-wildcard one) can reach the support
            # threshold, so the canonical cover is empty.
            return results
        level = self._initial_level()
        self.elements_generated += len(level)

        empty_element: Element = ((), ())
        base_candidates: Set[CandidateItem] = set()
        for attrs, pattern in level:
            base_candidates.add((attrs[0], pattern[0]))
        parent_cplus: Dict[Element, Set[CandidateItem]] = {empty_element: base_candidates}

        size = 1
        while level:
            if self._progress is not None:
                self._progress("ctane:level", size, self._arity)
            # --- Step 1: candidate RHS sets ------------------------------ #
            cplus: Dict[Element, Set[CandidateItem]] = {}
            for element in level:
                cplus[element] = self._intersect_parent_candidates(element, parent_cplus)

            # Group elements by attribute set: the step-2(c) update only ever
            # touches elements with the same attribute set.
            by_attrs: Dict[Tuple[int, ...], List[Element]] = {}
            for element in level:
                by_attrs.setdefault(element[0], []).append(element)

            # --- Step 2: validity checks and emission -------------------- #
            for element in sorted(level, key=self._generality_rank):
                attrs, pattern = element
                candidates = cplus[element]
                if not candidates:
                    continue
                for position, rhs in enumerate(attrs):
                    rhs_code = pattern[position]
                    if (rhs, rhs_code) not in candidates:
                        continue
                    lhs_attrs = attrs[:position] + attrs[position + 1:]
                    lhs_pattern = pattern[:position] + pattern[position + 1:]
                    if not self._cfd_valid(lhs_attrs, lhs_pattern, rhs, rhs_code):
                        continue
                    cfd = self._decode_cfd(lhs_attrs, lhs_pattern, rhs, rhs_code)
                    if self._verify_minimality and not is_minimal(
                        self._relation, cfd, k=self._min_support
                    ):
                        self.non_minimal_dropped += 1
                    else:
                        results.append(cfd)
                    # Step 2(c): prune the candidate sets of this element and
                    # of every element with the same attributes, an identical
                    # RHS pattern value and a more specific LHS pattern.
                    for other in by_attrs[attrs]:
                        other_pattern = other[1]
                        if other_pattern[position] != rhs_code:
                            continue
                        if not all(
                            pattern_leq(other_pattern[i], pattern[i])
                            for i in range(len(attrs))
                            if i != position
                        ):
                            continue
                        other_candidates = cplus[other]
                        other_candidates.discard((rhs, rhs_code))
                        if self._cplus_pruning:
                            for item in list(other_candidates):
                                if item[0] not in attrs:
                                    other_candidates.discard(item)

            # --- Step 3: prune elements with empty candidate sets -------- #
            if self._cplus_pruning:
                level = [element for element in level if cplus[element]]

            # --- Step 4: generate the next level ------------------------- #
            if self._max_lhs_size is not None and size > self._max_lhs_size:
                break
            level_index = set(level)
            next_level: Set[Element] = set()
            prefixes: Dict[Tuple, List[Element]] = {}
            for element in level:
                attrs, pattern = element
                key = (attrs[:-1], tuple(map(self._code_key, pattern[:-1])))
                prefixes.setdefault(key, []).append(element)
            for bucket in prefixes.values():
                bucket_sorted = sorted(
                    bucket, key=lambda e: (e[0][-1], self._code_key(e[1][-1]))
                )
                for i, (x_attrs, x_pattern) in enumerate(bucket_sorted):
                    for y_attrs, y_pattern in bucket_sorted[i + 1:]:
                        if x_attrs[-1] == y_attrs[-1]:
                            continue  # same attribute, different value: no join
                        z_attrs = x_attrs + (y_attrs[-1],)
                        z_pattern = x_pattern + (y_pattern[-1],)
                        candidate: Element = (z_attrs, z_pattern)
                        if candidate in next_level:
                            continue
                        if self._constant_support(z_attrs, z_pattern) < self._min_support:
                            continue
                        if not self._all_parents_present(candidate, level_index):
                            continue
                        next_level.add(candidate)
            self.elements_generated += len(next_level)
            parent_cplus = cplus
            level = sorted(next_level, key=self._generality_rank)
            size += 1
        return results

    # ------------------------------------------------------------------ #
    @staticmethod
    def _code_key(code: PatternCode) -> Tuple[int, int]:
        """A total order on pattern codes (wildcard first, then constants)."""
        return (0, -1) if is_wildcard(code) else (1, int(code))

    @staticmethod
    def _all_parents_present(candidate: Element, level_index: Set[Element]) -> bool:
        """Step 4(b)(iii): every immediate sub-element must be in the level."""
        attrs, pattern = candidate
        for position in range(len(attrs)):
            parent = (
                attrs[:position] + attrs[position + 1:],
                pattern[:position] + pattern[position + 1:],
            )
            if parent not in level_index:
                return False
        return True


def discover_cfds_ctane(
    relation: Relation, min_support: int = 1, **kwargs: object
) -> List[CFD]:
    """Convenience wrapper: run :class:`CTane` on ``relation``."""
    return CTane(relation, min_support, **kwargs).discover()


__all__ = ["CTane", "discover_cfds_ctane"]
