"""Interest measures for CFDs.

The paper restricts attention to *support* (k-frequency) but points to two
strands of follow-up work when discussing rule quality:

* Chiang & Miller [21] rank discovered rules by association-rule style
  measures — support, confidence, conviction and the χ² statistic;
* Cormode et al. [30] study the *confidence* of a CFD: the largest fraction of
  the matching tuples on which the CFD holds exactly.

This module implements those measures on top of the library's CFD semantics
so that discovered covers can be ranked or filtered, which is what the data
cleaning examples use to pick "trustworthy" rules.  All measures are defined
for arbitrary CFDs (constant or variable); conviction and χ² additionally need
a constant RHS and fall back to ``None`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import is_wildcard, value_matches
from repro.core.validation import matching_rows
from repro.relational.relation import Relation


@dataclass(frozen=True)
class CFDMeasures:
    """All interest measures of one CFD on one relation."""

    support_count: int
    support_ratio: float
    confidence: float
    conviction: Optional[float]
    chi_squared: Optional[float]


def confidence(relation: Relation, cfd: CFD) -> float:
    """The confidence of a CFD: the largest fraction of matching tuples keeping it.

    Following [30], the confidence is ``|r'| / |r_tp|`` where ``r_tp`` is the
    set of tuples matching the LHS pattern and ``r'`` is a maximum-size subset
    of ``r_tp`` on which the CFD holds exactly.  The maximum subset keeps, per
    LHS-value group, the most frequent RHS value that matches the RHS pattern.
    A CFD that holds exactly has confidence 1; an empty match also yields 1.
    """
    rows = matching_rows(relation, cfd)
    if not rows:
        return 1.0
    lhs_columns = [relation.column(a) for a in cfd.lhs]
    rhs_column = relation.column(cfd.rhs)
    groups: Dict[Tuple[Hashable, ...], Dict[Hashable, int]] = {}
    for row in rows:
        key = tuple(column[row] for column in lhs_columns)
        counts = groups.setdefault(key, {})
        value = rhs_column[row]
        counts[value] = counts.get(value, 0) + 1
    kept = 0
    for counts in groups.values():
        eligible = [
            count
            for value, count in counts.items()
            if value_matches(value, cfd.rhs_pattern)
        ]
        if eligible:
            kept += max(eligible)
    return kept / len(rows)


def _rhs_match_counts(relation: Relation, cfd: CFD) -> Tuple[int, int, int]:
    """Counts used by conviction / χ²: (|r_tp|, |r_tp ∧ rhs|, |rhs matches overall|)."""
    rows = matching_rows(relation, cfd)
    rhs_column = relation.column(cfd.rhs)
    rhs_in_match = sum(
        1 for row in rows if value_matches(rhs_column[row], cfd.rhs_pattern)
    )
    rhs_total = sum(
        1 for value in rhs_column if value_matches(value, cfd.rhs_pattern)
    )
    return len(rows), rhs_in_match, rhs_total


def conviction(relation: Relation, cfd: CFD) -> Optional[float]:
    """Conviction of a constant-RHS CFD (``None`` for variable CFDs).

    ``conviction = (1 - P(rhs)) / (1 - confidence)`` where ``P(rhs)`` is the
    frequency of the RHS constant in the whole relation and the confidence is
    ``P(rhs | lhs pattern)``.  A rule that never fails has infinite conviction,
    reported as ``float("inf")``.
    """
    if is_wildcard(cfd.rhs_pattern):
        return None
    n = relation.n_rows
    if n == 0:
        return None
    n_match, rhs_in_match, rhs_total = _rhs_match_counts(relation, cfd)
    if n_match == 0:
        return None
    rule_confidence = rhs_in_match / n_match
    rhs_probability = rhs_total / n
    if rule_confidence >= 1.0:
        return float("inf")
    return (1.0 - rhs_probability) / (1.0 - rule_confidence)


def chi_squared(relation: Relation, cfd: CFD) -> Optional[float]:
    """The χ² statistic of the 2×2 contingency table (LHS match × RHS match).

    Returns ``None`` for variable CFDs (the RHS event is then always true) and
    for degenerate tables (a marginal equal to zero or the full relation).
    """
    if is_wildcard(cfd.rhs_pattern):
        return None
    n = relation.n_rows
    if n == 0:
        return None
    n_match, rhs_in_match, rhs_total = _rhs_match_counts(relation, cfd)
    # contingency table cells: a = lhs ∧ rhs, b = lhs ∧ ¬rhs, c = ¬lhs ∧ rhs, d = rest
    a = rhs_in_match
    b = n_match - rhs_in_match
    c = rhs_total - rhs_in_match
    d = n - n_match - c
    row1, row2 = a + b, c + d
    col1, col2 = a + c, b + d
    if 0 in (row1, row2, col1, col2):
        return None
    expected = [
        (row1 * col1 / n, a),
        (row1 * col2 / n, b),
        (row2 * col1 / n, c),
        (row2 * col2 / n, d),
    ]
    return sum((observed - exp) ** 2 / exp for exp, observed in expected if exp > 0)


def measures(relation: Relation, cfd: CFD) -> CFDMeasures:
    """Bundle all interest measures of one CFD on one relation."""
    from repro.core.validation import support_count  # local import to avoid cycle noise

    count = support_count(relation, cfd)
    ratio = count / relation.n_rows if relation.n_rows else 0.0
    return CFDMeasures(
        support_count=count,
        support_ratio=ratio,
        confidence=confidence(relation, cfd),
        conviction=conviction(relation, cfd),
        chi_squared=chi_squared(relation, cfd),
    )


def rank_by_interest(
    relation: Relation, cfds, *, key: str = "confidence", descending: bool = True
):
    """Rank a collection of CFDs by one of the interest measures.

    ``key`` is one of ``"support"``, ``"confidence"``, ``"conviction"`` or
    ``"chi_squared"``; missing values (``None``) sort last.
    """
    valid = {"support", "confidence", "conviction", "chi_squared"}
    if key not in valid:
        raise ValueError(f"key must be one of {sorted(valid)}")

    def score(cfd: CFD):
        bundle = measures(relation, cfd)
        value = {
            "support": bundle.support_count,
            "confidence": bundle.confidence,
            "conviction": bundle.conviction,
            "chi_squared": bundle.chi_squared,
        }[key]
        missing = value is None
        magnitude = -1.0 if missing else float(value)
        return (missing, -magnitude if descending else magnitude)

    return sorted(cfds, key=score)


__all__ = [
    "CFDMeasures",
    "confidence",
    "conviction",
    "chi_squared",
    "measures",
    "rank_by_interest",
]
