"""DFD-style random-walk discovery of minimal k-frequent CFDs.

DFD (Abedjan, Schulze, Naumann — CIKM 2014) replaces the breadth-first
level-wise sweep of TANE/CTANE with a **random walk over the LHS lattice**:
from a seed node the walk descends while the node is a dependency and ascends
while it is not, classifying every visited node as a *dependency* or
*non-dependency* and pruning by monotonicity — supersets of a dependency are
dependencies, subsets of a non-dependency are non-dependencies — so most of
the lattice is *inferred*, never materialised.  Restart seeds are the minimal
hitting sets of the complements of the known non-dependencies, which steers
every new walk into still-undecided territory.

This implementation extends the FD walk with **constant pattern tableaux** so
it emits CFDs, mirroring FastCFD's outer structure exactly (Section 5 of the
reproduced paper): constant CFDs are delegated to CFDMiner over the shared
free/closed mining result, and for every (k-frequent free constant pattern
``X``, RHS attribute ``A``) context the walk finds the minimal *wildcard*
attribute sets ``Y`` such that ``(X ∪ Y_wildcards → A, _)`` holds.  By the
FastFD lemma those minimal LHS sets coincide with the minimal covers of the
minimal difference sets FastCFD enumerates, so the two engines produce the
same canonical cover — the property-test oracle relies on this.

The crucial difference is *how* validity is decided: not from pairwise
difference sets (quadratic in distinct rows, and historically capped at 62
attributes by the int64 bitmask encoding) but directly on the label-array
:class:`~repro.relational.partition.Partition` substrate —
``Π(X ∪ Y, sp)`` grouped by the wildcard attributes must be constant on the
RHS column.  Node partitions are served from (and recorded in) the session's
cross-run pattern-partition cache using the same ``(attrs, codes)`` keys as
CTANE, so a warm serving session benefits both engines.

Determinism: the walk order is driven by one ``random.Random(seed)``
instance, and the discovered minimal LHS sets are emitted in sorted order —
the returned cover is therefore byte-identical for *every* seed; only the
walk statistics (nodes visited, partitions computed, restarts) vary.

Fault behaviour: unlike CTANE there is no per-level frontier to snapshot, so
DFD does **not** checkpoint; a killed run degrades gracefully to a
deterministic re-run that warm-starts from the persisted pattern-partition
and free/closed caches (see DESIGN.md, "Checkpoint or degrade").
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.core.cfd import CFD
from repro.core.cfdminer import CFDMiner
from repro.core.pattern import WILDCARD
from repro.core.validation import satisfies
from repro.exceptions import DiscoveryError
from repro.fd.covers import minimal_covers
from repro.itemsets.itemset import EncodedItemSet
from repro.obs.names import SPAN_ENGINE_WALK
from repro.itemsets.mining import FreeClosedResult, mine_free_and_closed
from repro.relational.attrset import EMPTY_ATTRSET, AttrSet
from repro.relational.partition import (
    Partition,
    attribute_partition,
    pattern_partition,
)
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only (import would be circular)
    from repro.api.profiler import Profiler


class DFD:
    """Random-walk discovery of a canonical cover of minimal k-frequent CFDs.

    Parameters
    ----------
    relation:
        The sample relation ``r``.
    min_support:
        The support threshold ``k`` (at least 1).
    seed:
        Seed of the walk's ``random.Random`` instance.  Any seed produces the
        same cover (emission is sorted); the seed only shapes the traversal
        and therefore the walk statistics.
    constant_cfds:
        ``"cfdminer"`` (default — delegate constant CFDs to CFDMiner over the
        shared mining result), ``"inline"`` (emit the constant CFD of a
        context whose RHS is constant) or ``"skip"`` (variable CFDs only).
        Matches FastCFD's modes so the two engines stay output-identical.
    max_lhs_size:
        Optional cap on the total LHS size ``|X| + |Y|`` of emitted CFDs
        (CTANE semantics); ``None`` means unbounded.
    free_result:
        Optional pre-computed k-frequent free/closed mining result; the
        :class:`~repro.api.profiler.Profiler` session passes its cached copy
        so repeated runs skip the mining phase.
    session:
        Optional :class:`~repro.api.profiler.Profiler` bound to ``relation``.
        Node partitions are then served from and recorded in the session's
        ``attribute_partition`` / pattern-partition caches (shared with
        CTANE — same cache keys), so warm serving works unchanged.
    progress:
        Optional callback ``progress("dfd:rhs", done, total)`` invoked once
        per RHS attribute.

    Attributes
    ----------
    candidates_checked:
        Lattice-node validity decisions made (inferred or computed).
    nodes_visited:
        Nodes the walk occupied (seeds plus every descend/ascend step).
    partitions_computed:
        Node validity decisions that had to build or fetch a partition
        (the rest were inferred from monotonicity).
    restarts:
        Walks started from a regenerated seed.
    """

    def __init__(
        self,
        relation: Relation,
        min_support: int = 1,
        *,
        seed: int = 0,
        constant_cfds: str = "cfdminer",
        max_lhs_size: Optional[int] = None,
        free_result: Optional[FreeClosedResult] = None,
        session: Optional["Profiler"] = None,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ):
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if constant_cfds not in ("cfdminer", "inline", "skip"):
            raise DiscoveryError(
                "constant_cfds must be one of 'cfdminer', 'inline', 'skip'"
            )
        if (
            session is not None
            and session.relation is not relation
            and session.relation != relation
        ):
            raise DiscoveryError("the provided session does not profile this relation")
        self._relation = relation
        self._min_support = min_support
        self._constant_mode = constant_cfds
        self._max_lhs_size = max_lhs_size
        self._matrix = relation.encoded_matrix()
        self._arity = relation.arity
        self._free_result = free_result
        self._session = session
        self._progress = progress
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.candidates_checked = 0
        self.nodes_visited = 0
        self.partitions_computed = 0
        self.restarts = 0

    # ------------------------------------------------------------------ #
    @property
    def free_result(self) -> FreeClosedResult:
        """The k-frequent free item sets (mined lazily, shared with CFDMiner)."""
        if self._free_result is None:
            self._free_result = mine_free_and_closed(
                self._relation,
                min_support=self._min_support,
                max_size=self._max_lhs_size,
            )
        return self._free_result

    # ------------------------------------------------------------------ #
    def discover(self) -> List[CFD]:
        """Run DFD and return the canonical cover of minimal k-frequent CFDs."""
        cfds: List[CFD] = []
        if self._constant_mode == "cfdminer":
            miner = CFDMiner(
                self._relation,
                self._min_support,
                max_lhs_size=self._max_lhs_size,
                mining_result=self.free_result,  # share the mining work
            )
            cfds.extend(miner.discover())
        for rhs in range(self._arity):
            if self._progress is not None:
                self._progress("dfd:rhs", rhs + 1, self._arity)
            cfds.extend(self._find_cover(rhs))
        return cfds

    # ------------------------------------------------------------------ #
    def _find_cover(self, rhs: int) -> List[CFD]:
        """All minimal k-frequent CFDs with RHS attribute index ``rhs``."""
        found: List[CFD] = []
        for free in self.free_result.free_sets_sorted():
            if rhs in free.attributes:
                continue  # the constant pattern may not mention the RHS attribute
            found.extend(self._context_cfds(free, rhs))
        return found

    def _context_cfds(self, free, rhs: int) -> List[CFD]:
        """The variable CFDs of one (constant pattern, RHS) walk context."""
        x_items = sorted(free.items)
        budget: Optional[int] = None
        if self._max_lhs_size is not None:
            budget = self._max_lhs_size - len(x_items)
        candidates = AttrSet(
            a
            for a in range(self._arity)
            if a != rhs and a not in free.attributes
        )
        walk = _LatticeWalk(self, x_items, rhs, candidates, budget)
        if walk.validity(EMPTY_ATTRSET):
            # Condition (a): every tuple matching the pattern agrees on the
            # RHS — the context yields at most the constant CFD.
            if self._constant_mode == "inline":
                cfd = self._constant_candidate(free.items, free.tids, rhs)
                if cfd is not None:
                    return [cfd]
            return []
        if not candidates or (budget is not None and budget < 1):
            return []
        if not walk.validity(candidates):
            # Two matching tuples differ on the RHS and agree on every
            # candidate attribute: no wildcard extension can ever be valid.
            return []
        walk.run()
        results: List[CFD] = []
        for cover in sorted(walk.min_deps, key=lambda node: node.as_tuple):
            if self._pattern_is_most_general(free.items, cover, rhs):
                results.append(self._build_variable_cfd(free.items, cover, rhs))
        return results

    def _constant_candidate(
        self, items: EncodedItemSet, tids: np.ndarray, rhs: int
    ) -> Optional[CFD]:
        """Base case (a): the constant CFD of a pattern whose RHS is constant."""
        if tids.size < self._min_support:
            return None
        rhs_code = int(self._matrix[int(tids[0]), rhs])
        cfd = self._build_constant_cfd(items, rhs, rhs_code)
        # Left-reducedness: no single-attribute reduction of the LHS may hold.
        for attribute in cfd.lhs:
            if satisfies(self._relation, cfd.drop_lhs_attribute(attribute)):
                return None
        return cfd

    def _pattern_is_most_general(
        self, items: EncodedItemSet, cover: AttrSet, rhs: int
    ) -> bool:
        """Condition (b2): no LHS constant can be upgraded to ``_``.

        Upgrading the constant on attribute ``B`` yields a CFD that holds iff
        ``cover ∪ {B}`` (all wildcards) determines the RHS on the tuples
        matching the reduced pattern; if that happens for some ``B`` the
        candidate is not pattern-minimal.  This is the partition form of
        FastCFD's difference-set check (removing ``B`` altogether is subsumed
        by the upgrade, see DESIGN.md) — the two are equivalent by the FastFD
        lemma, keeping DFD and FastCFD output-identical.
        """
        ordered = sorted(items)
        for item in ordered:
            attribute = item[0]
            reduced = [entry for entry in ordered if entry != item]
            if self._pattern_holds(reduced, cover.add(attribute), rhs):
                return False
        return True

    def _pattern_holds(
        self,
        x_items: Sequence[Tuple[int, int]],
        wildcards: AttrSet,
        rhs: int,
    ) -> bool:
        """Does ``(X_constants ∪ wildcards → rhs, _)`` hold on the relation?"""
        x_attrs = tuple(attr for attr, _ in x_items)
        x_codes = tuple(int(code) for _, code in x_items)
        partition = self._node_partition(x_attrs, x_codes, wildcards)
        return partition.column_constant_on_classes(self._matrix[:, rhs])

    # ------------------------------------------------------------------ #
    # partition plumbing (shared with CTANE through the session caches)
    # ------------------------------------------------------------------ #
    def _node_partition(
        self,
        x_attrs: Tuple[int, ...],
        x_codes: Tuple[int, ...],
        node: AttrSet,
    ) -> Partition:
        """``Π(X ∪ node, sp)`` — constants on ``X``, wildcards on ``node``.

        Pure-wildcard nodes go through the session's shared
        ``attribute_partition`` cache; mixed nodes use the session's
        pattern-partition cache under the same ``(attrs, codes)`` keys CTANE
        stores its lattice elements with, so the caches are shared across
        engines and across runs.
        """
        if not x_attrs:
            attrs = node.as_tuple
            if self._session is not None:
                return self._session.attribute_partition(attrs)
            return attribute_partition(self._matrix, list(attrs))
        code_of: Dict[int, int] = dict(zip(x_attrs, x_codes))
        attrs = tuple(sorted(x_attrs + node.as_tuple))
        codes = tuple(code_of.get(attr, WILDCARD) for attr in attrs)
        key = (attrs, codes)
        if self._session is not None:
            cached = self._session.cached_pattern_partition(key)
            if cached is not None:
                return cached
        partition = pattern_partition(self._matrix, attrs, codes)
        if self._session is not None:
            self._session.store_pattern_partition(key, partition)
        return partition

    # ------------------------------------------------------------------ #
    # decoding helpers
    # ------------------------------------------------------------------ #
    def _build_constant_cfd(
        self, items: EncodedItemSet, rhs: int, rhs_code: int
    ) -> CFD:
        schema = self._relation.schema
        encoding = self._relation.encoding
        lhs_sorted = sorted(items)
        lhs_names = tuple(schema.name_of(index) for index, _ in lhs_sorted)
        lhs_values = tuple(
            encoding.decode_value(index, code) for index, code in lhs_sorted
        )
        return CFD(
            lhs_names,
            lhs_values,
            schema.name_of(rhs),
            encoding.decode_value(rhs, rhs_code),
        )

    def _build_variable_cfd(
        self, items: EncodedItemSet, cover: AttrSet, rhs: int
    ) -> CFD:
        schema = self._relation.schema
        encoding = self._relation.encoding
        lhs_names: List[str] = []
        lhs_pattern: List[object] = []
        for index, code in sorted(items):
            lhs_names.append(schema.name_of(index))
            lhs_pattern.append(encoding.decode_value(index, code))
        for index in cover:
            lhs_names.append(schema.name_of(index))
            lhs_pattern.append(WILDCARD)
        return CFD(tuple(lhs_names), tuple(lhs_pattern), schema.name_of(rhs), WILDCARD)


class _LatticeWalk:
    """The walk state of one (constant pattern, RHS attribute) context.

    Node states follow DFD's classification: a node is a *dependency*
    (``(X ∪ node → A, _)`` holds), a *non-dependency*, or still a
    *candidate*.  Two antichains carry everything the walk has learned:

    * ``_deps`` — known dependencies, kept ⊆-minimal (any superset of a
      member is inferred valid without touching a partition);
    * ``_non_deps`` — known non-dependencies, kept ⊆-maximal (any subset of
      a member is inferred invalid).

    Inference always runs before partition computation.  A walk from a seed
    *minimises* a valid node (descend while some immediate subset is valid;
    when none is, the node is a confirmed minimal dependency) or *maximises*
    an invalid one (ascend while some in-scope immediate superset is
    invalid).  Seeds are the minimal hitting sets of the complements of the
    known non-dependencies, filtered of supersets of confirmed minimal
    dependencies and of nodes beyond the LHS-size budget; every seed round
    therefore confirms a *new* minimal dependency or maximal non-dependency,
    which bounds the walk (see DESIGN.md for the termination argument).
    """

    def __init__(
        self,
        engine: DFD,
        x_items: Sequence[Tuple[int, int]],
        rhs: int,
        candidates: AttrSet,
        budget: Optional[int],
    ):
        self._engine = engine
        self._x_attrs = tuple(attr for attr, _ in x_items)
        self._x_codes = tuple(int(code) for _, code in x_items)
        self._rhs = rhs
        self._candidates = candidates
        self._budget = budget
        self._known: Dict[AttrSet, bool] = {}
        # Antichains kept as AttrSets plus parallel frozenset views: the
        # inference scans below run millions of subset tests per context,
        # and a plain ``frozenset <= frozenset`` is a single C call.
        self._deps: List[AttrSet] = []
        self._dep_elems: List[frozenset] = []
        self._non_deps: List[AttrSet] = []
        self._non_dep_elems: List[frozenset] = []
        self._seed_source: Optional[Iterator[AttrSet]] = None
        #: Confirmed minimal valid wildcard LHS sets (an antichain by
        #: construction — see the seed-filter argument in the class docstring).
        self.min_deps: List[AttrSet] = []

    # -- node classification ------------------------------------------- #
    def validity(self, node: AttrSet) -> bool:
        """Classify ``node``, inferring from the antichains before computing."""
        cached = self._known.get(node)
        if cached is not None:
            return cached
        self._engine.candidates_checked += 1
        elems = node.as_frozenset
        result: Optional[bool] = None
        for dep in self._dep_elems:
            if dep <= elems:
                result = True
                break
        if result is None:
            for non_dep in self._non_dep_elems:
                if elems <= non_dep:
                    result = False
                    break
        if result is None:
            result = self._compute(node)
        self._known[node] = result
        return result

    def _compute(self, node: AttrSet) -> bool:
        self._engine.partitions_computed += 1
        partition = self._engine._node_partition(
            self._x_attrs, self._x_codes, node
        )
        valid = partition.column_constant_on_classes(
            self._engine._matrix[:, self._rhs]
        )
        if valid:
            self._insert_minimal(node)
        else:
            self._insert_maximal(node)
        return valid

    def _insert_minimal(self, node: AttrSet) -> None:
        elems = node.as_frozenset
        if any(kept <= elems for kept in self._dep_elems):
            return  # subsumed: infers nothing new
        keep = [
            i for i, kept in enumerate(self._dep_elems) if not elems <= kept
        ]
        self._deps = [self._deps[i] for i in keep] + [node]
        self._dep_elems = [self._dep_elems[i] for i in keep] + [elems]

    def _insert_maximal(self, node: AttrSet) -> None:
        elems = node.as_frozenset
        if any(elems <= kept for kept in self._non_dep_elems):
            return
        keep = [
            i
            for i, kept in enumerate(self._non_dep_elems)
            if not kept <= elems
        ]
        self._non_deps = [self._non_deps[i] for i in keep] + [node]
        self._non_dep_elems = [self._non_dep_elems[i] for i in keep] + [elems]

    # -- the walk ------------------------------------------------------- #
    def run(self) -> None:
        """Walk until the seed space is exhausted; fills :attr:`min_deps`."""
        while True:
            seed = self._next_seed()
            if seed is None:
                return
            self._engine.restarts += 1
            # One span per seeded walk: restart count and per-walk node
            # visits are the DFD-side waterfall of a trace.
            with obs.get_tracer().start_span(
                SPAN_ENGINE_WALK, restart=self._engine.restarts, rhs=self._rhs
            ) as span:
                visited_before = self._engine.nodes_visited
                self._walk_from(seed)
                span.set_attr(
                    "nodes_visited", self._engine.nodes_visited - visited_before
                )

    def _next_seed(self) -> Optional[AttrSet]:
        """The next still-interesting minimal hitting set, or ``None``.

        A seed must intersect ``candidates − N`` for every known
        non-dependency ``N`` (otherwise it is ⊆ some ``N`` and already
        decided), must not extend a confirmed minimal dependency, and must
        fit the LHS-size budget.

        Seeds are drawn lazily from one live hitting-set enumeration and
        re-validated against the *current* antichains when drawn —
        re-enumerating from scratch after every confirmed node would
        dominate the whole walk, and materialising an enumeration up front
        is just as bad (the cover space can be huge while only its prefix
        is ever needed).  Only when the live enumeration runs dry is a
        fresh one started against the updated non-dependency family; a
        fresh enumeration that yields no passing seed is exactly the
        original exhaustion condition, so termination and the confirmed
        cover are unchanged — the laziness only reorders visits.
        """
        seed = self._drain_source()
        if seed is not None:
            return seed
        complements = [self._candidates - non_dep for non_dep in self._non_deps]
        self._seed_source = minimal_covers(complements, list(self._candidates))
        return self._drain_source()

    def _drain_source(self) -> Optional[AttrSet]:
        source = self._seed_source
        if source is None:
            return None
        for cover in source:
            if self._budget is not None and len(cover) > self._budget:
                continue
            cover_elems = cover.as_frozenset
            if any(dep.as_frozenset <= cover_elems for dep in self.min_deps):
                continue
            # Stale check: a seed enumerated before the last walk may have
            # stopped hitting every complement (⟺ it became ⊆ some newly
            # recorded non-dependency) — walking it would confirm nothing.
            if any(cover_elems <= non_dep for non_dep in self._non_dep_elems):
                continue
            return cover
        self._seed_source = None
        return None

    def _walk_from(self, seed: AttrSet) -> None:
        if self.validity(seed):
            self._minimise(seed)
        else:
            self._maximise(seed)

    def _minimise(self, node: AttrSet) -> None:
        """Descend from a valid node to a confirmed minimal dependency."""
        while True:
            self._engine.nodes_visited += 1
            descended = False
            for attr in self._shuffled(node):
                subset = node.discard(attr)
                if self.validity(subset):
                    node = subset
                    descended = True
                    break
            if not descended:
                # Every immediate subset is a non-dependency: minimal.
                self.min_deps.append(node)
                return

    def _maximise(self, node: AttrSet) -> None:
        """Ascend from an invalid node to a maximal in-scope non-dependency."""
        while True:
            self._engine.nodes_visited += 1
            ascended = False
            for attr in self._shuffled(self._candidates - node):
                superset = node.add(attr)
                if self._budget is not None and len(superset) > self._budget:
                    continue
                if not self.validity(superset):
                    node = superset
                    ascended = True
                    break
            if not ascended:
                # Every in-scope immediate superset is a dependency (or out
                # of budget): record the ceiling so seeds steer elsewhere.
                self._insert_maximal(node)
                return

    def _shuffled(self, attrs: AttrSet) -> List[int]:
        order = list(attrs)
        self._engine._rng.shuffle(order)
        return order


def discover_cfds_dfd(
    relation: Relation, min_support: int = 1, **kwargs: object
) -> List[CFD]:
    """Convenience wrapper: run :class:`DFD` on ``relation``."""
    return DFD(relation, min_support, **kwargs).discover()


__all__ = ["DFD", "discover_cfds_dfd"]
