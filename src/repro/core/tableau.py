"""Pattern-tableau CFDs (Section 2.3 of the paper).

The original CFD definition of [1] allows a *pattern tableau*: a CFD
``φ = (X → A, Tp)`` whose tableau ``Tp`` contains several pattern tuples, and
``r ⊨ φ`` iff ``r`` satisfies every single-pattern CFD ``(X → A, tp)`` with
``tp ∈ Tp``.  The paper observes that a tableau CFD is equivalent to the set
of its single-pattern CFDs, defines its support as the minimum support over
its pattern tuples, and reduces the discovery of k-frequent tableau CFDs to
the discovery of k-frequent single-pattern CFDs — which is what the three
algorithms of the paper (and of this library) produce.

This module provides the other direction of that reduction: the
:class:`TableauCFD` value object, its semantics, and
:func:`group_into_tableaux`, which folds a discovered canonical cover into one
tableau CFD per embedded FD (the presentation format used by data-quality
tools and by [10]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import PatternTuple, pattern_str
from repro.core.validation import satisfies, support_count
from repro.exceptions import DependencyError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class TableauCFD:
    """A CFD ``(X → A, Tp)`` with a pattern tableau ``Tp``.

    Attributes
    ----------
    lhs:
        The LHS attributes ``X`` (sorted, as in :class:`~repro.core.cfd.CFD`).
    rhs:
        The RHS attribute ``A``.
    tableau:
        The pattern tuples, each ranging over ``X ∪ {A}``.
    """

    lhs: Tuple[str, ...]
    rhs: str
    tableau: Tuple[PatternTuple, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", tuple(sorted(self.lhs)))
        expected = set(self.lhs) | {self.rhs}
        for pattern in self.tableau:
            if set(pattern.attributes) != expected:
                raise DependencyError(
                    f"pattern tuple {pattern} does not range over {sorted(expected)}"
                )

    # ------------------------------------------------------------------ #
    @property
    def embedded_fd(self) -> Tuple[Tuple[str, ...], str]:
        """The embedded FD ``X → A``."""
        return self.lhs, self.rhs

    def to_cfds(self) -> List[CFD]:
        """The equivalent set of single-pattern CFDs (paper Section 2.3)."""
        return [
            CFD.from_pattern_tuple(self.lhs, self.rhs, pattern)
            for pattern in self.tableau
        ]

    def __len__(self) -> int:
        return len(self.tableau)

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        rows = "; ".join(
            "("
            + ", ".join(pattern_str(pattern[a]) for a in self.lhs)
            + " || "
            + pattern_str(pattern[self.rhs])
            + ")"
            for pattern in self.tableau
        )
        return f"([{lhs}] -> {self.rhs}, {{{rows}}})"


def tableau_satisfies(relation: Relation, tableau_cfd: TableauCFD) -> bool:
    """``r ⊨ (X → A, Tp)`` iff every single-pattern CFD of the tableau holds."""
    return all(satisfies(relation, cfd) for cfd in tableau_cfd.to_cfds())


def tableau_support(relation: Relation, tableau_cfd: TableauCFD) -> int:
    """The paper's tableau support: the minimum support over the tableau rows."""
    supports = [support_count(relation, cfd) for cfd in tableau_cfd.to_cfds()]
    return min(supports) if supports else 0


def group_into_tableaux(cfds: Iterable[CFD]) -> List[TableauCFD]:
    """Fold single-pattern CFDs into one tableau CFD per embedded FD.

    The input is typically the canonical cover returned by one of the
    discovery algorithms; the output presents the same rules grouped as
    pattern tableaux (one per ``X → A``), which is how CFDs are usually shown
    to users of data-quality tools.  Rows within a tableau are ordered by
    their textual rendering to keep the result deterministic.
    """
    grouped: Dict[Tuple[Tuple[str, ...], str], List[CFD]] = {}
    for cfd in cfds:
        grouped.setdefault((cfd.lhs, cfd.rhs), []).append(cfd)
    tableaux = []
    for (lhs, rhs), members in sorted(grouped.items()):
        patterns = tuple(
            member.pattern_tuple
            for member in sorted(members, key=str)
        )
        tableaux.append(TableauCFD(lhs=lhs, rhs=rhs, tableau=patterns))
    return tableaux


def flatten_tableaux(tableaux: Iterable[TableauCFD]) -> List[CFD]:
    """The inverse of :func:`group_into_tableaux` (up to ordering)."""
    cfds: List[CFD] = []
    for tableau_cfd in tableaux:
        cfds.extend(tableau_cfd.to_cfds())
    return cfds


__all__ = [
    "TableauCFD",
    "tableau_satisfies",
    "tableau_support",
    "group_into_tableaux",
    "flatten_tableaux",
]
