"""Conditional functional dependencies (Section 2.1 of the paper).

A CFD ``φ = (X → A, tp)`` couples a standard FD ``X → A`` (the *embedded FD*)
with a pattern tuple ``tp`` over ``X ∪ {A}``.  This module defines the
:class:`CFD` value object together with convenience constructors for the two
canonical classes used throughout the paper (Lemma 1):

* **constant CFDs** — every pattern position is a constant;
* **variable CFDs** — the RHS pattern is the unnamed variable ``_``.

CFD objects are immutable, hashable, and canonicalise their LHS attribute
order so that two CFDs that differ only in attribute listing order compare
equal.  Semantics (satisfaction, support, violations) live in
:mod:`repro.core.validation`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.core.pattern import (
    WILDCARD,
    PatternTuple,
    PatternValue,
    is_wildcard,
    pattern_str,
)
from repro.exceptions import DependencyError


class CFD:
    """A conditional functional dependency ``(X → A, (tp[X] ‖ tp[A]))``.

    Parameters
    ----------
    lhs:
        The LHS attributes ``X`` (any order; canonicalised internally).
    lhs_pattern:
        Pattern values aligned with ``lhs`` (constants or :data:`WILDCARD`).
    rhs:
        The single RHS attribute ``A``.
    rhs_pattern:
        The RHS pattern value (a constant or :data:`WILDCARD`).

    Examples
    --------
    >>> phi = CFD(("CC", "AC"), ("01", "908"), "CT", "MH")
    >>> phi.is_constant
    True
    >>> print(phi)
    ([AC, CC] -> CT, (908, 01 || MH))
    """

    __slots__ = ("_lhs", "_lhs_pattern", "_rhs", "_rhs_pattern")

    def __init__(
        self,
        lhs: Sequence[str],
        lhs_pattern: Sequence[PatternValue],
        rhs: str,
        rhs_pattern: PatternValue,
    ):
        lhs = tuple(lhs)
        lhs_pattern = tuple(lhs_pattern)
        if len(lhs) != len(lhs_pattern):
            raise DependencyError(
                f"{len(lhs)} LHS attributes but {len(lhs_pattern)} pattern values"
            )
        if len(set(lhs)) != len(lhs):
            raise DependencyError(f"duplicate LHS attributes: {lhs}")
        if not isinstance(rhs, str) or not rhs:
            raise DependencyError(f"invalid RHS attribute: {rhs!r}")
        order = sorted(range(len(lhs)), key=lambda i: lhs[i])
        self._lhs: Tuple[str, ...] = tuple(lhs[i] for i in order)
        self._lhs_pattern: Tuple[PatternValue, ...] = tuple(lhs_pattern[i] for i in order)
        self._rhs = rhs
        self._rhs_pattern = rhs_pattern

    # ------------------------------------------------------------------ #
    # alternative constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(
        cls,
        lhs_pattern: Mapping[str, Hashable],
        rhs: str,
        rhs_value: Hashable,
    ) -> "CFD":
        """A constant CFD from an ``{attribute: constant}`` LHS mapping."""
        return cls(
            tuple(lhs_pattern.keys()), tuple(lhs_pattern.values()), rhs, rhs_value
        )

    @classmethod
    def variable(
        cls,
        lhs_pattern: Mapping[str, PatternValue],
        rhs: str,
    ) -> "CFD":
        """A variable CFD (RHS pattern ``_``) from an LHS mapping."""
        return cls(
            tuple(lhs_pattern.keys()), tuple(lhs_pattern.values()), rhs, WILDCARD
        )

    @classmethod
    def from_pattern_tuple(
        cls, lhs: Sequence[str], rhs: str, pattern: PatternTuple
    ) -> "CFD":
        """Build a CFD from a pattern tuple over ``X ∪ {A}``."""
        mapping = pattern.as_dict()
        missing = [a for a in tuple(lhs) + (rhs,) if a not in mapping]
        if missing:
            raise DependencyError(f"pattern tuple misses attributes {missing}")
        return cls(
            tuple(lhs), tuple(mapping[a] for a in lhs), rhs, mapping[rhs]
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def lhs(self) -> Tuple[str, ...]:
        """The LHS attribute set ``X`` (canonical, sorted by name)."""
        return self._lhs

    @property
    def lhs_pattern(self) -> Tuple[PatternValue, ...]:
        """Pattern values aligned with :attr:`lhs`."""
        return self._lhs_pattern

    @property
    def rhs(self) -> str:
        """The RHS attribute ``A``."""
        return self._rhs

    @property
    def rhs_pattern(self) -> PatternValue:
        """The RHS pattern value ``tp[A]``."""
        return self._rhs_pattern

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes mentioned by the CFD (``X`` then ``A``)."""
        return self._lhs + (self._rhs,)

    @property
    def lhs_pattern_tuple(self) -> PatternTuple:
        """The LHS pattern as a :class:`PatternTuple` (paper: ``tp[X]``)."""
        return PatternTuple(self._lhs, self._lhs_pattern)

    @property
    def pattern_tuple(self) -> PatternTuple:
        """The full pattern tuple over ``X ∪ {A}``."""
        return PatternTuple(self.attributes, self._lhs_pattern + (self._rhs_pattern,))

    def lhs_value(self, attribute: str) -> PatternValue:
        """The LHS pattern value of ``attribute``."""
        try:
            return self._lhs_pattern[self._lhs.index(attribute)]
        except ValueError:
            raise DependencyError(
                f"attribute {attribute!r} is not in the LHS {self._lhs}"
            ) from None

    # ------------------------------------------------------------------ #
    # classification (Section 2.1.3)
    # ------------------------------------------------------------------ #
    @property
    def is_constant(self) -> bool:
        """``True`` iff every pattern position (LHS and RHS) is a constant."""
        return not is_wildcard(self._rhs_pattern) and all(
            not is_wildcard(v) for v in self._lhs_pattern
        )

    @property
    def is_variable(self) -> bool:
        """``True`` iff the RHS pattern is the unnamed variable ``_``."""
        return is_wildcard(self._rhs_pattern)

    @property
    def is_trivial(self) -> bool:
        """``True`` iff the RHS attribute also appears in the LHS."""
        return self._rhs in self._lhs

    @property
    def is_pure_fd(self) -> bool:
        """``True`` iff every pattern position is ``_`` (an embedded plain FD)."""
        return self.is_variable and all(is_wildcard(v) for v in self._lhs_pattern)

    @property
    def embedded_fd(self) -> Tuple[Tuple[str, ...], str]:
        """The embedded FD ``X → A`` as ``(lhs_attributes, rhs_attribute)``."""
        return self._lhs, self._rhs

    @property
    def constant_lhs_attributes(self) -> Tuple[str, ...]:
        """LHS attributes that carry a constant (paper: ``Xᶜ``)."""
        return tuple(
            a for a, v in zip(self._lhs, self._lhs_pattern) if not is_wildcard(v)
        )

    @property
    def wildcard_lhs_attributes(self) -> Tuple[str, ...]:
        """LHS attributes that carry the unnamed variable (paper: ``Xᵛ``)."""
        return tuple(
            a for a, v in zip(self._lhs, self._lhs_pattern) if is_wildcard(v)
        )

    # ------------------------------------------------------------------ #
    # derivation helpers used by minimality checking
    # ------------------------------------------------------------------ #
    def drop_lhs_attribute(self, attribute: str) -> "CFD":
        """The CFD obtained by removing ``attribute`` from the LHS."""
        if attribute not in self._lhs:
            raise DependencyError(f"{attribute!r} is not an LHS attribute")
        pairs = [
            (a, v) for a, v in zip(self._lhs, self._lhs_pattern) if a != attribute
        ]
        return CFD(
            tuple(a for a, _ in pairs),
            tuple(v for _, v in pairs),
            self._rhs,
            self._rhs_pattern,
        )

    def generalise_lhs_attribute(self, attribute: str) -> "CFD":
        """The CFD obtained by upgrading one LHS constant to ``_``."""
        value = self.lhs_value(attribute)
        if is_wildcard(value):
            raise DependencyError(f"{attribute!r} already carries the unnamed variable")
        pattern = [
            WILDCARD if a == attribute else v
            for a, v in zip(self._lhs, self._lhs_pattern)
        ]
        return CFD(self._lhs, tuple(pattern), self._rhs, self._rhs_pattern)

    def restrict_lhs(self, attributes: Iterable[str]) -> "CFD":
        """The CFD restricted to the LHS attributes in ``attributes``."""
        keep = set(attributes)
        unknown = keep - set(self._lhs)
        if unknown:
            raise DependencyError(f"attributes {sorted(unknown)} are not in the LHS")
        pairs = [
            (a, v) for a, v in zip(self._lhs, self._lhs_pattern) if a in keep
        ]
        return CFD(
            tuple(a for a, _ in pairs),
            tuple(v for _, v in pairs),
            self._rhs,
            self._rhs_pattern,
        )

    # ------------------------------------------------------------------ #
    # identity / rendering
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CFD)
            and other._lhs == self._lhs
            and other._lhs_pattern == self._lhs_pattern
            and other._rhs == self._rhs
            and other._rhs_pattern == self._rhs_pattern
        )

    def __hash__(self) -> int:
        return hash((self._lhs, self._lhs_pattern, self._rhs, self._rhs_pattern))

    def __repr__(self) -> str:
        return (
            f"CFD(lhs={self._lhs!r}, lhs_pattern={self._lhs_pattern!r}, "
            f"rhs={self._rhs!r}, rhs_pattern={self._rhs_pattern!r})"
        )

    def __str__(self) -> str:
        lhs = ", ".join(self._lhs)
        lhs_pattern = ", ".join(pattern_str(v) for v in self._lhs_pattern)
        rhs_pattern = pattern_str(self._rhs_pattern)
        if not self._lhs:
            return f"([] -> {self._rhs}, ( || {rhs_pattern}))"
        return f"([{lhs}] -> {self._rhs}, ({lhs_pattern} || {rhs_pattern}))"


class ConstantCFD(CFD):
    """A CFD whose pattern tuple consists of constants only."""

    def __init__(
        self,
        lhs: Sequence[str],
        lhs_pattern: Sequence[Hashable],
        rhs: str,
        rhs_pattern: Hashable,
    ):
        if is_wildcard(rhs_pattern) or any(is_wildcard(v) for v in lhs_pattern):
            raise DependencyError("a constant CFD cannot contain the unnamed variable")
        super().__init__(lhs, lhs_pattern, rhs, rhs_pattern)


class VariableCFD(CFD):
    """A CFD whose RHS pattern is the unnamed variable ``_``."""

    def __init__(
        self,
        lhs: Sequence[str],
        lhs_pattern: Sequence[PatternValue],
        rhs: str,
        rhs_pattern: PatternValue = WILDCARD,
    ):
        if not is_wildcard(rhs_pattern):
            raise DependencyError("a variable CFD must have the unnamed variable as RHS pattern")
        super().__init__(lhs, lhs_pattern, rhs, WILDCARD)


def cfd_from_fd(lhs: Sequence[str], rhs: str) -> CFD:
    """Express the plain FD ``X → A`` as the CFD ``(X → A, (_, …, _ ‖ _))``."""
    lhs = tuple(lhs)
    return CFD(lhs, tuple(WILDCARD for _ in lhs), rhs, WILDCARD)


def normalise_constant_cfd(cfd: CFD) -> CFD:
    """Normalise a CFD with a constant RHS pattern (Lemma 1 of the paper).

    When ``tp[A]`` is a constant, every LHS attribute carrying ``_`` can be
    dropped without changing the semantics; the result is a proper constant
    CFD.  Variable CFDs are returned unchanged.
    """
    if is_wildcard(cfd.rhs_pattern):
        return cfd
    pairs = [
        (a, v)
        for a, v in zip(cfd.lhs, cfd.lhs_pattern)
        if not is_wildcard(v)
    ]
    return CFD(
        tuple(a for a, _ in pairs),
        tuple(v for _, v in pairs),
        cfd.rhs,
        cfd.rhs_pattern,
    )


__all__ = [
    "CFD",
    "ConstantCFD",
    "VariableCFD",
    "cfd_from_fd",
    "normalise_constant_cfd",
]
