"""Core CFD model and the three discovery algorithms of the paper.

Public surface:

* :mod:`repro.core.pattern` — pattern values, the unnamed variable ``_`` and
  the match order ``≼`` (Section 2.1.2).
* :mod:`repro.core.cfd` — :class:`~repro.core.cfd.CFD` objects and the
  embedded-FD view (Section 2.1.1).
* :mod:`repro.core.validation` — satisfaction, violations and support
  (Sections 2.1.2 and 2.2.2).
* :mod:`repro.core.minimality` — left-reducedness / minimality and canonical
  covers (Section 2.2.1).
* :mod:`repro.core.cfdminer` — CFDMiner, constant CFD discovery (Section 3).
* :mod:`repro.core.ctane` — CTANE, levelwise general CFD discovery (Section 4).
* :mod:`repro.core.fastcfd` — FastCFD / NaiveFast, depth-first general CFD
  discovery (Section 5).
* :mod:`repro.core.bruteforce` — definition-level reference discoverer used as
  the oracle in tests.
* :mod:`repro.core.discovery` — a unified ``discover()`` front-end.
* :mod:`repro.core.implication` — constant-CFD implication and cover
  minimisation (the paper's future-work item on CFD inference).
"""

from repro.core.pattern import WILDCARD, PatternTuple, is_wildcard, value_matches
from repro.core.cfd import CFD, ConstantCFD, VariableCFD, cfd_from_fd
from repro.core.validation import (
    holds,
    satisfies,
    support,
    support_count,
    violations,
    violating_tuples,
)
from repro.core.minimality import (
    is_left_reduced,
    is_minimal,
    is_trivial,
    canonical_cover,
)
from repro.core.cfdminer import CFDMiner
from repro.core.ctane import CTane
from repro.core.fastcfd import FastCFD, NaiveFast
from repro.core.bruteforce import discover_bruteforce
from repro.core.discovery import DiscoveryResult, discover
from repro.core.implication import implies_constant, minimise_constant_cover
from repro.core.measures import CFDMeasures, confidence, measures, rank_by_interest
from repro.core.sampling import (
    SampledDiscoveryResult,
    discover_with_sampling,
    stratified_sample,
)
from repro.core.tableau import TableauCFD, group_into_tableaux

__all__ = [
    "WILDCARD",
    "PatternTuple",
    "is_wildcard",
    "value_matches",
    "CFD",
    "ConstantCFD",
    "VariableCFD",
    "cfd_from_fd",
    "holds",
    "satisfies",
    "support",
    "support_count",
    "violations",
    "violating_tuples",
    "is_left_reduced",
    "is_minimal",
    "is_trivial",
    "canonical_cover",
    "CFDMiner",
    "CTane",
    "FastCFD",
    "NaiveFast",
    "discover_bruteforce",
    "DiscoveryResult",
    "discover",
    "implies_constant",
    "minimise_constant_cover",
    "CFDMeasures",
    "confidence",
    "measures",
    "rank_by_interest",
    "SampledDiscoveryResult",
    "discover_with_sampling",
    "stratified_sample",
    "TableauCFD",
    "group_into_tableaux",
]
