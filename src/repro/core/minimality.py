"""Minimal (left-reduced) CFDs and canonical covers (Section 2.2.1).

A CFD is *minimal* on a relation ``r`` when it is nontrivial, holds on ``r``
and is *left-reduced*:

* **constant CFD** ``(X → A, (tp ‖ a))`` — no proper subset ``Y ⊊ X`` yields a
  satisfied CFD ``(Y → A, (tp[Y] ‖ a))`` (attribute minimality);
* **variable CFD** ``(X → A, (tp ‖ _))`` — (1) attribute minimality as above
  and (2) no constant of ``tp`` can be upgraded to ``_`` while keeping the CFD
  satisfied (pattern most-generality).

Because satisfaction is preserved when patterns are *specialised* and when
LHS attributes are *added*, it suffices to check single-attribute removals and
single-constant upgrades; this module exploits that and is therefore usable as
an (inexpensive) output guard for the discovery algorithms as well as by the
brute-force oracle.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.core.cfd import CFD
from repro.core.pattern import is_wildcard
from repro.core.validation import satisfies, support_count
from repro.relational.relation import Relation


def is_trivial(cfd: CFD) -> bool:
    """``True`` iff the RHS attribute occurs in the LHS (paper Section 2.2.1)."""
    return cfd.is_trivial


def _attribute_removals(cfd: CFD) -> Iterable[CFD]:
    """CFDs obtained by dropping a single LHS attribute."""
    for attribute in cfd.lhs:
        yield cfd.drop_lhs_attribute(attribute)


def _pattern_upgrades(cfd: CFD) -> Iterable[CFD]:
    """Variable-CFD generalisations: one LHS constant upgraded to ``_``."""
    for attribute, value in zip(cfd.lhs, cfd.lhs_pattern):
        if not is_wildcard(value):
            yield cfd.generalise_lhs_attribute(attribute)


def is_left_reduced(relation: Relation, cfd: CFD) -> bool:
    """``True`` iff ``cfd`` is left-reduced on ``relation``.

    The check assumes ``relation ⊨ cfd`` (callers should test that first if it
    is not already known); left-reducedness itself does not require it.
    """
    for generalisation in _attribute_removals(cfd):
        if satisfies(relation, generalisation):
            return False
    if cfd.is_variable:
        for generalisation in _pattern_upgrades(cfd):
            if satisfies(relation, generalisation):
                return False
    return True


def is_minimal(relation: Relation, cfd: CFD, k: int = 1) -> bool:
    """``True`` iff ``cfd`` is a minimal, ``k``-frequent CFD of ``relation``."""
    if cfd.is_trivial:
        return False
    if not satisfies(relation, cfd):
        return False
    if support_count(relation, cfd) < k:
        return False
    return is_left_reduced(relation, cfd)


def filter_minimal(relation: Relation, cfds: Iterable[CFD], k: int = 1) -> List[CFD]:
    """Keep only the CFDs that are minimal and ``k``-frequent on ``relation``."""
    return [cfd for cfd in cfds if is_minimal(relation, cfd, k=k)]


def canonical_cover(relation: Relation, cfds: Iterable[CFD], k: int = 1) -> Set[CFD]:
    """The canonical cover induced by ``cfds``: minimal, ``k``-frequent, deduplicated.

    This is a *filtering* canonicalisation: it assumes ``cfds`` enumerates (a
    superset of) the k-frequent CFDs of interest — as the brute-force oracle
    does — and keeps the minimal ones.  The discovery algorithms construct
    canonical covers directly.
    """
    cover: Set[CFD] = set()
    for cfd in cfds:
        if is_minimal(relation, cfd, k=k):
            cover.add(cfd)
    return cover


def assert_cover_properties(relation: Relation, cfds: Sequence[CFD], k: int = 1) -> None:
    """Raise ``AssertionError`` unless every CFD is minimal and k-frequent.

    Used by the test-suite and available to callers who want a hard guarantee
    on an algorithm's output.
    """
    for cfd in cfds:
        if not is_minimal(relation, cfd, k=k):
            raise AssertionError(f"{cfd} is not a minimal {k}-frequent CFD")


__all__ = [
    "is_trivial",
    "is_left_reduced",
    "is_minimal",
    "filter_minimal",
    "canonical_cover",
    "assert_cover_properties",
]
