"""FastCFD and NaiveFast: depth-first discovery of general CFDs (Section 5).

FastCFD decomposes the discovery problem per RHS attribute ``A`` and, for each
k-frequent **free** item set ``(X, tp)`` (the pattern-pruning strategy of
Lemma 5), computes the minimal difference sets ``Dᵐ_A(r_tp)`` and enumerates
their minimal covers depth-first (procedure FindMin).  Each minimal cover
``Y`` yields the candidate variable CFD ``([X, Y] → A, (tp, _, … ‖ _))``,
which is emitted once the left-reducedness conditions (b1)/(b2) of the paper
hold; when ``Dᵐ_A(r_tp)`` is empty the constant CFD ``(X → A, (tp ‖ a))`` is
produced instead (condition (a)), unless constant discovery is delegated to
CFDMiner (the paper's recommended configuration).

Two interchangeable *difference-set providers* implement the paper's two
variants:

* :class:`PartitionDifferenceSets` — pairwise/partition based computation;
  plugging it in gives the paper's **NaiveFast**.
* :class:`ClosedSetDifferenceSets` — difference sets are read off the
  2-frequent closed item sets that extend ``(X, tp)`` (Section 5.5); plugging
  it in gives the paper's **FastCFD** proper.
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.cfd import CFD
from repro.core.cfdminer import CFDMiner
from repro.core.pattern import WILDCARD
from repro.core.validation import satisfies
from repro.exceptions import DiscoveryError
from repro.fd.covers import covers, minimal_covers
from repro.fd.difference_sets import minimal_difference_sets_wrt, minimal_sets
from repro.itemsets.itemset import EncodedItem, EncodedItemSet
from repro.itemsets.mining import (
    FreeClosedResult,
    itemset_support,
    mine_free_and_closed,
)
from repro.relational.attrset import AttrSet
from repro.relational.relation import Relation

AttributeSet = AttrSet

#: Rough bytes per small hashable (an int in a frozenset, an encoded item) in
#: the :meth:`DifferenceSetProvider.estimated_bytes` estimates.  Deliberately
#: coarse — the session pool only needs relative sizes for eviction.
_EST_ITEM_BYTES = 64


def _family_bytes(family: Iterable[FrozenSet]) -> int:
    """Approximate heap bytes of a collection of frozensets."""
    return 64 + sum(64 + _EST_ITEM_BYTES * len(member) for member in family)


# ---------------------------------------------------------------------- #
# difference-set providers
# ---------------------------------------------------------------------- #
class DifferenceSetProvider:
    """Interface: minimal difference sets ``Dᵐ_A(r_tp)`` for a constant pattern."""

    def minimal_difference_sets(
        self, rhs: int, items: EncodedItemSet
    ) -> Set[AttributeSet]:
        raise NotImplementedError

    def estimated_bytes(self) -> int:
        """Approximate heap bytes held by the provider's indexes and caches."""
        return 0

    def export_cache(self) -> List[Tuple[int, EncodedItemSet, Set[AttributeSet]]]:
        """Snapshot of the per-query cache as ``(rhs, items, family)`` triples.

        The serving layer's persistent :class:`~repro.serve.store.CacheStore`
        dumps this so a restarted worker's provider answers previously seen
        queries without recomputing them.
        """
        return []

    def import_cache(
        self, entries: Iterable[Tuple[int, EncodedItemSet, Set[AttributeSet]]]
    ) -> None:
        """Pre-seed the per-query cache (inverse of :meth:`export_cache`)."""


class PartitionDifferenceSets(DifferenceSetProvider):
    """Pairwise (partition style) difference sets — the **NaiveFast** provider.

    For every queried pattern the provider materialises the matching tuples
    and compares them pairwise (with numpy bitmask batching).  The cost grows
    quadratically with the number of distinct matching tuples, which is
    exactly the DBSIZE sensitivity the paper reports for NaiveFast.
    """

    def __init__(self, relation: Relation):
        self._relation = relation
        self._matrix = relation.encoded_matrix()
        self._cache: Dict[Tuple[int, EncodedItemSet], Set[AttributeSet]] = {}
        # Guards _cache against concurrent engines sharing one session; the
        # difference-set computation itself runs outside the lock (duplicate
        # concurrent computes are benign — the result is deterministic).
        self._cache_lock = threading.Lock()

    def minimal_difference_sets(
        self, rhs: int, items: EncodedItemSet
    ) -> Set[AttributeSet]:
        key = (rhs, frozenset(items))
        with self._cache_lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        tids = itemset_support(self._relation, items)
        result = minimal_difference_sets_wrt(self._matrix, rhs, rows=tids)
        with self._cache_lock:
            self._cache[key] = result
        return result

    def estimated_bytes(self) -> int:
        """Approximate heap bytes of the per-query cache.

        The encoded matrix belongs to (and is accounted on) the relation's
        encoding, not the provider.
        """
        with self._cache_lock:
            entries = list(self._cache.items())
        total = 0
        for (_, items), family in entries:
            total += 64 + _EST_ITEM_BYTES * len(items) + _family_bytes(family)
        return total

    def export_cache(self):
        with self._cache_lock:
            entries = list(self._cache.items())
        return [(rhs, items, set(family)) for (rhs, items), family in entries]

    def import_cache(self, entries) -> None:
        with self._cache_lock:
            for rhs, items, family in entries:
                self._cache.setdefault((int(rhs), frozenset(items)), set(family))


class ClosedSetDifferenceSets(DifferenceSetProvider):
    """Difference sets from 2-frequent closed item sets — the **FastCFD** provider.

    The agree set of any pair of tuples is a closed item set with support at
    least two; conversely every 2-frequent closed item set that extends the
    queried pattern and carries no item on the RHS attribute is the agree set
    of at least one pair of matching tuples that disagree on the RHS.  The
    minimal difference sets are therefore the ⊆-minimal complements of those
    closed item sets (Section 5.5 of the paper).
    """

    def __init__(
        self,
        relation: Relation,
        closed_result: Optional[FreeClosedResult] = None,
    ):
        self._relation = relation
        self._arity = relation.arity
        if closed_result is None:
            closed_result = mine_free_and_closed(relation, min_support=2)
        # Precompute, per closed set: its items, its attribute set, its
        # complement (the candidate difference set), and a posting list from
        # each item to the closed sets containing it, so that queries only
        # touch the closed sets that can possibly match.
        self._closed_items: List[EncodedItemSet] = list(
            closed_result.closed_to_free.keys()
        )
        all_attrs = AttrSet.full(self._arity)
        self._closed_attrs: List[AttrSet] = []
        self._closed_complements: List[AttrSet] = []
        self._postings: Dict[EncodedItem, Set[int]] = {}
        for index, items in enumerate(self._closed_items):
            attrs = AttrSet(attr for attr, _ in items)
            self._closed_attrs.append(attrs)
            self._closed_complements.append(all_attrs - attrs)
            for item in items:
                self._postings.setdefault(item, set()).add(index)
        self._all_indices = set(range(len(self._closed_items)))
        self._cache: Dict[Tuple[int, EncodedItemSet], Set[AttributeSet]] = {}
        # Same discipline as PartitionDifferenceSets: the lock guards only
        # the cache dict, never the query computation.
        self._cache_lock = threading.Lock()

    def _candidate_indices(self, query: EncodedItemSet) -> Set[int]:
        """Indices of the closed sets containing every item of ``query``."""
        if not query:
            return self._all_indices
        posting_lists = []
        for item in query:
            posting = self._postings.get(item)
            if not posting:
                return set()
            posting_lists.append(posting)
        posting_lists.sort(key=len)
        candidates = set(posting_lists[0])
        for posting in posting_lists[1:]:
            candidates &= posting
            if not candidates:
                break
        return candidates

    def minimal_difference_sets(
        self, rhs: int, items: EncodedItemSet
    ) -> Set[AttributeSet]:
        key = (rhs, frozenset(items))
        with self._cache_lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        family: Set[AttributeSet] = set()
        for index in self._candidate_indices(frozenset(items)):
            closed_attrs = self._closed_attrs[index]
            if rhs in closed_attrs:
                continue  # the pair agrees on the RHS attribute
            family.add(self._closed_complements[index] - {rhs})
        result = minimal_sets(family)
        with self._cache_lock:
            self._cache[key] = result
        return result

    def estimated_bytes(self) -> int:
        """Approximate heap bytes of the closed-set index and the query cache."""
        total = _family_bytes(self._closed_items)
        total += _family_bytes(self._closed_attrs)
        total += _family_bytes(self._closed_complements)
        total += _family_bytes(self._postings.values())
        total += _EST_ITEM_BYTES * len(self._all_indices)
        with self._cache_lock:
            entries = list(self._cache.items())
        for (_, items), family in entries:
            total += 64 + _EST_ITEM_BYTES * len(items) + _family_bytes(family)
        return total

    def export_cache(self):
        with self._cache_lock:
            entries = list(self._cache.items())
        return [(rhs, items, set(family)) for (rhs, items), family in entries]

    def import_cache(self, entries) -> None:
        with self._cache_lock:
            for rhs, items, family in entries:
                self._cache.setdefault((int(rhs), frozenset(items)), set(family))


# ---------------------------------------------------------------------- #
# the algorithm
# ---------------------------------------------------------------------- #
class FastCFD:
    """Depth-first discovery of a canonical cover of minimal k-frequent CFDs.

    Parameters
    ----------
    relation:
        The sample relation ``r``.
    min_support:
        The support threshold ``k`` (at least 1).
    difference_sets:
        ``"closed"`` (default — the paper's FastCFD) or ``"partition"`` (the
        paper's NaiveFast); alternatively a ready-made
        :class:`DifferenceSetProvider` instance.
    constant_cfds:
        ``"cfdminer"`` (default — delegate constant CFDs to CFDMiner, the
        paper's optimised configuration), ``"inline"`` (base case (a) of
        FindMin) or ``"skip"`` (variable CFDs only).
    dynamic_reordering:
        Greedy dynamic attribute reordering during cover search (Section 5.6).
    max_lhs_size:
        Optional cap on the constant-pattern size considered (free item sets
        larger than this are not enumerated); ``None`` means unbounded.
    free_result:
        Optional pre-computed k-frequent free/closed mining result for this
        relation and threshold; the :class:`~repro.api.profiler.Profiler`
        session passes its cached copy here so repeated runs skip the mining
        phase.
    progress:
        Optional callback ``progress(stage, done, total)`` invoked once per
        RHS attribute while the per-attribute covers are enumerated.
    """

    def __init__(
        self,
        relation: Relation,
        min_support: int = 1,
        *,
        difference_sets: object = "closed",
        constant_cfds: str = "cfdminer",
        dynamic_reordering: bool = True,
        max_lhs_size: Optional[int] = None,
        free_result: Optional[FreeClosedResult] = None,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ):
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if constant_cfds not in ("cfdminer", "inline", "skip"):
            raise DiscoveryError(
                "constant_cfds must be one of 'cfdminer', 'inline', 'skip'"
            )
        self._relation = relation
        self._min_support = min_support
        self._constant_mode = constant_cfds
        self._dynamic_reordering = dynamic_reordering
        self._max_lhs_size = max_lhs_size
        self._matrix = relation.encoded_matrix()
        self._arity = relation.arity
        self._free_result: Optional[FreeClosedResult] = free_result
        self._progress = progress
        if isinstance(difference_sets, DifferenceSetProvider):
            self._provider: DifferenceSetProvider = difference_sets
        elif difference_sets == "closed":
            self._provider = ClosedSetDifferenceSets(relation)
        elif difference_sets == "partition":
            self._provider = PartitionDifferenceSets(relation)
        else:
            raise DiscoveryError(
                "difference_sets must be 'closed', 'partition' or a provider instance"
            )

    # ------------------------------------------------------------------ #
    @property
    def free_result(self) -> FreeClosedResult:
        """The k-frequent free item sets (mined lazily, shared with CFDMiner)."""
        if self._free_result is None:
            self._free_result = mine_free_and_closed(
                self._relation,
                min_support=self._min_support,
                max_size=self._max_lhs_size,
            )
        return self._free_result

    # ------------------------------------------------------------------ #
    def discover(self) -> List[CFD]:
        """Run FastCFD and return the canonical cover of minimal k-frequent CFDs."""
        cfds: List[CFD] = []
        if self._constant_mode == "cfdminer":
            miner = CFDMiner(
                self._relation,
                self._min_support,
                max_lhs_size=self._max_lhs_size,
                mining_result=self.free_result,  # share the mining work
            )
            cfds.extend(miner.discover())
        for rhs in range(self._arity):
            if self._progress is not None:
                self._progress("fastcfd:rhs", rhs + 1, self._arity)
            cfds.extend(self._find_cover(rhs))
        return cfds

    # ------------------------------------------------------------------ #
    # FindCover / FindMin (Section 5.2)
    # ------------------------------------------------------------------ #
    def _find_cover(self, rhs: int) -> List[CFD]:
        """All minimal k-frequent CFDs with RHS attribute index ``rhs``."""
        found: List[CFD] = []
        for free in self.free_result.free_sets_sorted():
            if rhs in free.attributes:
                continue  # the constant pattern may not mention the RHS attribute
            diff_sets = self._provider.minimal_difference_sets(rhs, free.items)
            if not diff_sets:
                # Condition (a): every matching tuple agrees on the RHS.
                if self._constant_mode == "inline":
                    cfd = self._constant_candidate(free.items, free.tids, rhs)
                    if cfd is not None:
                        found.append(cfd)
                continue
            if frozenset() in diff_sets:
                # Two matching tuples differ on the RHS and agree elsewhere:
                # no LHS extension can ever yield a valid CFD.
                continue
            candidates = [
                a for a in range(self._arity) if a != rhs and a not in free.attributes
            ]
            for cover in minimal_covers(
                diff_sets, candidates, dynamic_reordering=self._dynamic_reordering
            ):
                if self._pattern_is_most_general(free.items, cover, rhs):
                    found.append(self._build_variable_cfd(free.items, cover, rhs))
        return found

    def _constant_candidate(
        self, items: EncodedItemSet, tids: np.ndarray, rhs: int
    ) -> Optional[CFD]:
        """Base case (a): the constant CFD of a pattern whose RHS is constant."""
        if tids.size < self._min_support:
            return None
        rhs_code = int(self._matrix[int(tids[0]), rhs])
        cfd = self._build_constant_cfd(items, rhs, rhs_code)
        # Left-reducedness: no single-attribute reduction of the LHS may hold.
        for attribute in cfd.lhs:
            if satisfies(self._relation, cfd.drop_lhs_attribute(attribute)):
                return None
        return cfd

    def _pattern_is_most_general(
        self, items: EncodedItemSet, cover: AttributeSet, rhs: int
    ) -> bool:
        """Condition (b2): no LHS constant can be upgraded to ``_``.

        Upgrading the constant on attribute ``B`` of the pattern yields a CFD
        that holds iff ``cover ∪ {B}`` covers ``Dᵐ_A`` of the tuples matching
        the reduced pattern; if that happens for some ``B`` the candidate is
        not pattern-minimal.  (Removing ``B`` altogether is subsumed by this
        check, see DESIGN.md.)
        """
        for item in items:
            attribute = item[0]
            reduced = frozenset(items) - {item}
            reduced_diff = self._provider.minimal_difference_sets(rhs, reduced)
            if frozenset() in reduced_diff:
                continue
            if covers(set(cover) | {attribute}, reduced_diff):
                return False
        return True

    # ------------------------------------------------------------------ #
    # decoding helpers
    # ------------------------------------------------------------------ #
    def _build_constant_cfd(
        self, items: EncodedItemSet, rhs: int, rhs_code: int
    ) -> CFD:
        schema = self._relation.schema
        encoding = self._relation.encoding
        lhs_sorted = sorted(items)
        lhs_names = tuple(schema.name_of(index) for index, _ in lhs_sorted)
        lhs_values = tuple(
            encoding.decode_value(index, code) for index, code in lhs_sorted
        )
        return CFD(
            lhs_names,
            lhs_values,
            schema.name_of(rhs),
            encoding.decode_value(rhs, rhs_code),
        )

    def _build_variable_cfd(
        self, items: EncodedItemSet, cover: AttributeSet, rhs: int
    ) -> CFD:
        schema = self._relation.schema
        encoding = self._relation.encoding
        lhs_names: List[str] = []
        lhs_pattern: List[object] = []
        for index, code in sorted(items):
            lhs_names.append(schema.name_of(index))
            lhs_pattern.append(encoding.decode_value(index, code))
        for index in sorted(cover):
            lhs_names.append(schema.name_of(index))
            lhs_pattern.append(WILDCARD)
        return CFD(tuple(lhs_names), tuple(lhs_pattern), schema.name_of(rhs), WILDCARD)


class NaiveFast(FastCFD):
    """The paper's NaiveFast: FastCFD with partition-based difference sets.

    Identical output to :class:`FastCFD`; only the difference-set provider —
    and therefore the runtime behaviour as DBSIZE grows — differs.
    """

    def __init__(
        self,
        relation: Relation,
        min_support: int = 1,
        *,
        difference_sets: object = None,
        constant_cfds: str = "inline",
        dynamic_reordering: bool = True,
        max_lhs_size: Optional[int] = None,
        free_result: Optional[FreeClosedResult] = None,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ):
        if difference_sets is None:
            difference_sets = PartitionDifferenceSets(relation)
        elif not isinstance(difference_sets, PartitionDifferenceSets):
            raise DiscoveryError(
                "NaiveFast requires a PartitionDifferenceSets provider"
            )
        super().__init__(
            relation,
            min_support,
            difference_sets=difference_sets,
            constant_cfds=constant_cfds,
            dynamic_reordering=dynamic_reordering,
            max_lhs_size=max_lhs_size,
            free_result=free_result,
            progress=progress,
        )


def discover_cfds_fastcfd(
    relation: Relation, min_support: int = 1, **kwargs: object
) -> List[CFD]:
    """Convenience wrapper: run :class:`FastCFD` on ``relation``."""
    return FastCFD(relation, min_support, **kwargs).discover()


__all__ = [
    "DifferenceSetProvider",
    "PartitionDifferenceSets",
    "ClosedSetDifferenceSets",
    "FastCFD",
    "NaiveFast",
    "discover_cfds_fastcfd",
]
