"""Satisfaction, violation and support of CFDs (Sections 2.1.2 and 2.2.2).

The semantics implemented here follow the paper exactly:

* ``r ⊨ (X → A, tp)`` iff for every pair of tuples ``t1, t2`` (including
  ``t1 = t2``): ``t1[X] = t2[X] ≼ tp[X]`` implies ``t1[A] = t2[A] ≼ tp[A]``.
  Equivalently, restricted to the tuples matching ``tp[X]``: (i) tuples
  agreeing on ``X`` agree on ``A`` and (ii) every matching tuple's ``A`` value
  matches ``tp[A]``.
* ``sup(φ, r)`` is the set of tuples matching the *whole* pattern (LHS and
  RHS); ``φ`` is ``k``-frequent iff ``|sup(φ, r)| ≥ k``.
* A violation is either a *single-tuple* violation (a matching tuple whose
  ``A`` value does not match a constant ``tp[A]``) or a *pair* violation (two
  matching tuples agreeing on ``X`` but differing on ``A``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.cfd import CFD
from repro.core.pattern import is_wildcard, value_matches
from repro.relational.relation import Relation


@dataclass(frozen=True)
class Violation:
    """A witnessed violation of a CFD on a relation.

    ``rows`` contains one row index for a single-tuple violation and two row
    indices for a pair violation.
    """

    cfd: CFD
    rows: Tuple[int, ...]
    kind: str  # "single" or "pair"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind} violation of {self.cfd} by rows {self.rows}"


# ---------------------------------------------------------------------- #
# row matching helpers
# ---------------------------------------------------------------------- #
def _matching_row_mask(relation: Relation, cfd: CFD) -> np.ndarray:
    """Boolean mask of rows matching the LHS pattern constants of ``cfd``."""
    n = relation.n_rows
    mask = np.ones(n, dtype=bool)
    for attribute, pattern_value in zip(cfd.lhs, cfd.lhs_pattern):
        if is_wildcard(pattern_value):
            continue
        column = relation.column(attribute)
        mask &= np.fromiter(
            (value == pattern_value for value in column), dtype=bool, count=n
        )
    return mask


def matching_rows(relation: Relation, cfd: CFD) -> List[int]:
    """Row indices whose ``X`` values match ``tp[X]`` (paper: ``r_tp``)."""
    return np.nonzero(_matching_row_mask(relation, cfd))[0].tolist()


# ---------------------------------------------------------------------- #
# satisfaction
# ---------------------------------------------------------------------- #
def satisfies(relation: Relation, cfd: CFD) -> bool:
    """``True`` iff ``relation ⊨ cfd``.

    Trivial CFDs follow the paper's semantics literally (which usually makes
    them unsatisfiable or vacuous); the discovery algorithms never emit them.
    """
    rows = matching_rows(relation, cfd)
    if not rows:
        return True
    rhs_column = relation.column(cfd.rhs)
    rhs_pattern = cfd.rhs_pattern
    groups: Dict[Tuple[Hashable, ...], Hashable] = {}
    lhs_columns = [relation.column(a) for a in cfd.lhs]
    for row in rows:
        rhs_value = rhs_column[row]
        if not value_matches(rhs_value, rhs_pattern):
            return False
        key = tuple(column[row] for column in lhs_columns)
        previous = groups.get(key, _SENTINEL)
        if previous is _SENTINEL:
            groups[key] = rhs_value
        elif previous != rhs_value:
            return False
    return True


_SENTINEL = object()


def holds(relation: Relation, cfd: CFD, k: int = 1) -> bool:
    """``True`` iff ``cfd`` is satisfied by ``relation`` and is ``k``-frequent."""
    return satisfies(relation, cfd) and support_count(relation, cfd) >= k


def satisfies_all(relation: Relation, cfds: Iterable[CFD]) -> bool:
    """``True`` iff the relation satisfies every CFD of the collection."""
    return all(satisfies(relation, cfd) for cfd in cfds)


# ---------------------------------------------------------------------- #
# support
# ---------------------------------------------------------------------- #
def support(relation: Relation, cfd: CFD) -> List[int]:
    """Row indices matching the full pattern of ``cfd`` (LHS and RHS)."""
    mask = _matching_row_mask(relation, cfd)
    rhs_pattern = cfd.rhs_pattern
    if not is_wildcard(rhs_pattern):
        column = relation.column(cfd.rhs)
        mask &= np.fromiter(
            (value == rhs_pattern for value in column),
            dtype=bool,
            count=relation.n_rows,
        )
    return np.nonzero(mask)[0].tolist()


def support_count(relation: Relation, cfd: CFD) -> int:
    """``|sup(cfd, relation)|`` — the paper's support size."""
    return len(support(relation, cfd))


def is_frequent(relation: Relation, cfd: CFD, k: int) -> bool:
    """``True`` iff ``cfd`` is ``k``-frequent in ``relation``."""
    return support_count(relation, cfd) >= k


# ---------------------------------------------------------------------- #
# violations
# ---------------------------------------------------------------------- #
def violations(
    relation: Relation, cfd: CFD, *, max_violations: Optional[int] = None
) -> List[Violation]:
    """All witnessed violations of ``cfd`` on ``relation``.

    Pair violations report one representative pair per conflicting group pair
    of RHS values (not every quadratic pair), which is enough to localise the
    error for cleaning purposes.
    """
    found: List[Violation] = []
    rows = matching_rows(relation, cfd)
    if not rows:
        return found
    rhs_column = relation.column(cfd.rhs)
    lhs_columns = [relation.column(a) for a in cfd.lhs]
    rhs_pattern = cfd.rhs_pattern
    rhs_constant = not is_wildcard(rhs_pattern)
    groups: Dict[Tuple[Hashable, ...], Dict[Hashable, int]] = {}
    for row in rows:
        rhs_value = rhs_column[row]
        if rhs_constant and rhs_value != rhs_pattern:
            found.append(Violation(cfd=cfd, rows=(row,), kind="single"))
            if max_violations is not None and len(found) >= max_violations:
                return found
        key = tuple(column[row] for column in lhs_columns)
        witnesses = groups.setdefault(key, {})
        if rhs_value not in witnesses:
            witnesses[rhs_value] = row
    for witnesses in groups.values():
        if len(witnesses) > 1:
            representative_rows = sorted(witnesses.values())
            first = representative_rows[0]
            for other in representative_rows[1:]:
                found.append(Violation(cfd=cfd, rows=(first, other), kind="pair"))
                if max_violations is not None and len(found) >= max_violations:
                    return found
    return found


def violating_tuples(relation: Relation, cfds: Iterable[CFD]) -> Set[int]:
    """Row indices involved in at least one violation of any given CFD."""
    rows: Set[int] = set()
    for cfd in cfds:
        for violation in violations(relation, cfd):
            rows.update(violation.rows)
    return rows


__all__ = [
    "Violation",
    "matching_rows",
    "satisfies",
    "satisfies_all",
    "holds",
    "support",
    "support_count",
    "is_frequent",
    "violations",
    "violating_tuples",
]
