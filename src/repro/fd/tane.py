"""TANE: levelwise discovery of minimal functional dependencies [13].

This is the classical algorithm that CTANE (Section 4 of the paper) extends.
It searches the lattice of attribute sets level by level, maintains the
candidate-RHS sets ``C+`` for pruning, and validates candidate FDs with
equivalence-class partitions.

The implementation keeps the exposition close to the original paper: a level
``L_ℓ`` of attribute sets, partitions computed as products of the previous
level's partitions, and the three pruning rules (C+ intersection, RHS removal
on found FDs, empty-C+ elimination).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import DiscoveryError
from repro.fd.fd import FD
from repro.relational.partition import Partition, attribute_partition
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only (import would be circular)
    from repro.api.profiler import Profiler

AttrSet = FrozenSet[int]


class Tane:
    """Levelwise minimal-FD discovery.

    Parameters
    ----------
    relation:
        The relation instance to profile.
    max_lhs_size:
        Optional cap on the LHS size (``None`` explores the full lattice).
    session:
        Optional :class:`~repro.api.profiler.Profiler` bound to ``relation``.
        When given, the single-attribute base partitions are served from the
        session's ``attribute_partition`` cache — the same substrate CTANE
        and the cleaning layer draw from — so repeated runs over one session
        skip the base-partition construction.

    Examples
    --------
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows(["A", "B"], [(1, 1), (1, 1), (2, 3)])
    >>> sorted(str(fd) for fd in Tane(r).discover())
    ['[A] -> B', '[B] -> A']
    """

    def __init__(
        self,
        relation: Relation,
        max_lhs_size: int = None,
        *,
        session: Optional["Profiler"] = None,
    ):
        if (
            session is not None
            and session.relation is not relation
            and session.relation != relation
        ):
            raise DiscoveryError("the provided session does not profile this relation")
        self._relation = relation
        self._matrix = relation.encoded_matrix()
        self._arity = relation.arity
        self._max_lhs_size = max_lhs_size
        self._session = session
        self._partitions: Dict[AttrSet, Partition] = {}
        self.candidates_checked = 0

    # ------------------------------------------------------------------ #
    def _partition(self, attrs: AttrSet) -> Partition:
        """Partition of the relation by ``attrs`` (cached, built by products)."""
        cached = self._partitions.get(attrs)
        if cached is not None:
            return cached
        if len(attrs) <= 1:
            if self._session is not None:
                partition = self._session.attribute_partition(tuple(sorted(attrs)))
            else:
                partition = attribute_partition(self._matrix, sorted(attrs))
        else:
            attrs_sorted = sorted(attrs)
            left = frozenset(attrs_sorted[:-1])
            right = frozenset(attrs_sorted[-1:])
            partition = self._partition(left).product(self._partition(right))
        self._partitions[attrs] = partition
        return partition

    def _fd_valid(self, lhs: AttrSet, rhs: int) -> bool:
        """``lhs → rhs`` holds iff the partitions have equally many classes."""
        self.candidates_checked += 1
        with_rhs = frozenset(lhs | {rhs})
        return self._partition(lhs).n_classes == self._partition(with_rhs).n_classes

    # ------------------------------------------------------------------ #
    def discover(self) -> List[FD]:
        """Run TANE and return the minimal FDs of the relation."""
        names = self._relation.attributes
        all_attrs = frozenset(range(self._arity))
        results: List[FD] = []

        cplus: Dict[AttrSet, Set[int]] = {frozenset(): set(all_attrs)}
        level: List[AttrSet] = [frozenset([a]) for a in range(self._arity)]
        size = 1
        while level:
            # Step 1: candidate RHS sets.
            for attrs in level:
                candidate = None
                for attribute in attrs:
                    parent = cplus.get(attrs - {attribute}, set())
                    candidate = set(parent) if candidate is None else candidate & parent
                cplus[attrs] = candidate if candidate is not None else set()

            # Step 2: emit FDs X \ {A} → A for A ∈ X ∩ C+(X).
            for attrs in level:
                for attribute in sorted(attrs & cplus[attrs]):
                    lhs = attrs - {attribute}
                    if self._fd_valid(lhs, attribute):
                        results.append(
                            FD(tuple(names[a] for a in sorted(lhs)), names[attribute])
                        )
                        cplus[attrs].discard(attribute)
                        for other in all_attrs - attrs:
                            cplus[attrs].discard(other)

            # Step 3: prune elements whose candidate set is empty.
            level = [attrs for attrs in level if cplus[attrs]]

            # Step 4: generate the next level by prefix join.
            if self._max_lhs_size is not None and size > self._max_lhs_size:
                break
            current = {attrs for attrs in level}
            next_level: Set[AttrSet] = set()
            sorted_level = sorted(current, key=lambda s: sorted(s))
            for i, left in enumerate(sorted_level):
                left_sorted = sorted(left)
                for right in sorted_level[i + 1:]:
                    right_sorted = sorted(right)
                    if left_sorted[:-1] != right_sorted[:-1]:
                        continue
                    union = left | right
                    if all(union - {a} in current for a in union):
                        next_level.add(union)
            level = sorted(next_level, key=lambda s: sorted(s))
            size += 1
        return results


def discover_fds_tane(
    relation: Relation, max_lhs_size: int = None, **kwargs: object
) -> List[FD]:
    """Convenience wrapper: run :class:`Tane` on ``relation``."""
    return Tane(relation, max_lhs_size=max_lhs_size, **kwargs).discover()


__all__ = ["Tane", "discover_fds_tane"]
