"""Difference sets (Section 5.1 of the paper).

For tuples ``t1, t2`` the *difference set* ``D(t1, t2)`` is the set of
attributes on which they disagree.  FastFD and FastCFD work with the
difference sets *with respect to a RHS attribute* ``A``:

``D_A(r) = { D(t1, t2) \\ {A} : t1, t2 ∈ r, A ∈ D(t1, t2) }``

and, crucially, with its *minimal* elements ``Dᵐ_A(r)``: a set of attributes
``Y`` covers ``Dᵐ_A(r)`` iff the FD/CFD with LHS ``Y`` (and wildcards) holds.

The functions here operate on encoded integer matrices (optionally restricted
to a row subset) and use bitmask tricks so that the inner pairwise loop stays
inside numpy.  The complexity is inherently quadratic in the number of
distinct rows — that is exactly the behaviour the paper observes for
NaiveFast, and the closed-item-set based provider in
:mod:`repro.core.fastcfd` exists to avoid it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

import numpy as np

AttributeSet = FrozenSet[int]


def _bitmask_to_attrs(mask: int, exclude: Optional[int] = None) -> AttributeSet:
    """Decode a difference bitmask into a frozenset of attribute indices."""
    attrs = []
    index = 0
    while mask:
        if mask & 1 and index != exclude:
            attrs.append(index)
        mask >>= 1
        index += 1
    return frozenset(attrs)


def _pairwise_difference_bitmasks(
    matrix: np.ndarray, require_attr: Optional[int] = None
) -> Set[int]:
    """Distinct difference bitmasks over all row pairs of ``matrix``.

    When ``require_attr`` is given only pairs differing on that attribute are
    reported.  Duplicate rows are removed first; identical rows produce the
    empty difference set which never matters for covers.
    """
    if matrix.shape[0] == 0:
        return set()
    unique = np.unique(matrix, axis=0)
    n, arity = unique.shape
    if arity > 62:
        raise ValueError("bitmask difference sets support at most 62 attributes")
    weights = (np.int64(1) << np.arange(arity, dtype=np.int64))
    masks: Set[int] = set()
    for i in range(n - 1):
        diffs = unique[i + 1:] != unique[i]
        if require_attr is not None:
            keep = diffs[:, require_attr]
            if not keep.any():
                continue
            diffs = diffs[keep]
        codes = diffs.astype(np.int64) @ weights
        masks.update(int(code) for code in np.unique(codes))
    masks.discard(0)
    return masks


def difference_sets(
    matrix: np.ndarray, rows: Optional[Sequence[int]] = None
) -> Set[AttributeSet]:
    """``D(r)``: the distinct non-empty difference sets over all tuple pairs."""
    if rows is not None:
        matrix = matrix[np.asarray(rows, dtype=np.int64), :]
    masks = _pairwise_difference_bitmasks(matrix)
    return {_bitmask_to_attrs(mask) for mask in masks}


def difference_sets_wrt(
    matrix: np.ndarray,
    rhs: int,
    rows: Optional[Sequence[int]] = None,
) -> Set[AttributeSet]:
    """``D_A(r)``: difference sets of pairs disagreeing on ``rhs``, with ``rhs`` removed."""
    if rows is not None:
        matrix = matrix[np.asarray(rows, dtype=np.int64), :]
    masks = _pairwise_difference_bitmasks(matrix, require_attr=rhs)
    return {_bitmask_to_attrs(mask, exclude=rhs) for mask in masks}


def minimal_sets(family: Iterable[AttributeSet]) -> Set[AttributeSet]:
    """The ⊆-minimal members of a family of attribute sets."""
    ordered = sorted(set(family), key=len)
    minimal: List[AttributeSet] = []
    for candidate in ordered:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return set(minimal)


def minimal_difference_sets_wrt(
    matrix: np.ndarray,
    rhs: int,
    rows: Optional[Sequence[int]] = None,
) -> Set[AttributeSet]:
    """``Dᵐ_A(r)``: the minimal difference sets with respect to ``rhs``."""
    return minimal_sets(difference_sets_wrt(matrix, rhs, rows))


__all__ = [
    "AttributeSet",
    "difference_sets",
    "difference_sets_wrt",
    "minimal_sets",
    "minimal_difference_sets_wrt",
]
