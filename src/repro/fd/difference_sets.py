"""Difference sets (Section 5.1 of the paper).

For tuples ``t1, t2`` the *difference set* ``D(t1, t2)`` is the set of
attributes on which they disagree.  FastFD and FastCFD work with the
difference sets *with respect to a RHS attribute* ``A``:

``D_A(r) = { D(t1, t2) \\ {A} : t1, t2 ∈ r, A ∈ D(t1, t2) }``

and, crucially, with its *minimal* elements ``Dᵐ_A(r)``: a set of attributes
``Y`` covers ``Dᵐ_A(r)`` iff the FD/CFD with LHS ``Y`` (and wildcards) holds.

The functions here operate on encoded integer matrices (optionally restricted
to a row subset) and use bitmask tricks so that the inner pairwise loop stays
inside numpy.  The complexity is inherently quadratic in the number of
distinct rows — that is exactly the behaviour the paper observes for
NaiveFast, and the closed-item-set based provider in
:mod:`repro.core.fastcfd` exists to avoid it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

import numpy as np

AttributeSet = FrozenSet[int]


def _bitmask_to_attrs(mask: int, exclude: Optional[int] = None) -> AttributeSet:
    """Decode a difference bitmask into a frozenset of attribute indices."""
    attrs = []
    index = 0
    while mask:
        if mask & 1 and index != exclude:
            attrs.append(index)
        mask >>= 1
        index += 1
    return frozenset(attrs)


#: Per-block working-set target for the blocked pairwise comparison
#: (the int64 code matrix of one block), in bytes.
_BLOCK_BUDGET_BYTES = 32 * 2 ** 20


def _pairwise_difference_bitmasks(
    matrix: np.ndarray,
    require_attr: Optional[int] = None,
    block_rows: Optional[int] = None,
) -> Set[int]:
    """Distinct difference bitmasks over all row pairs of ``matrix``.

    When ``require_attr`` is given only pairs differing on that attribute are
    reported.  Duplicate rows are removed first; identical rows produce the
    empty difference set which never matters for covers.

    The pairwise comparison runs in *row blocks*: for a block of ``B`` rows
    the bitmask codes against every later row are accumulated column by
    column into one ``B × m`` int64 matrix, then deduplicated with a single
    ``np.unique`` per block.  This bounds peak memory (``block_rows`` is
    sized to roughly :data:`_BLOCK_BUDGET_BYTES` unless given explicitly)
    while replacing the per-row Python set updates of the old implementation
    with one vectorized pass per block.
    """
    if matrix.shape[0] == 0:
        return set()
    unique = np.unique(matrix, axis=0)
    n, arity = unique.shape
    if arity > 62:
        raise ValueError("bitmask difference sets support at most 62 attributes")
    masks: Set[int] = set()
    if n < 2:
        return masks
    if block_rows is None:
        block_rows = max(1, _BLOCK_BUDGET_BYTES // (8 * n))
    columns = [unique[:, a] for a in range(arity)]

    def pair_codes(rows: slice, others: slice) -> np.ndarray:
        codes = None
        for a, column in enumerate(columns):
            differs = column[rows, None] != column[None, others]
            shifted = differs.astype(np.int64) << a
            codes = shifted if codes is None else codes.__ior__(shifted)
        return codes

    def distinct(codes: np.ndarray) -> np.ndarray:
        # There are at most 2**arity distinct masks, so for narrow relations
        # a counting pass beats the sort inside np.unique by a wide margin.
        if arity <= 22:
            return np.nonzero(np.bincount(codes, minlength=1 << arity))[0]
        return np.unique(codes)

    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        block_codes = []
        if stop - start > 1:
            # pairs inside the block: upper triangle only
            codes = pair_codes(slice(start, stop), slice(start, stop))
            block_codes.append(codes[np.triu_indices(stop - start, k=1)])
        if stop < n:
            # pairs of a block row with any later row: the full rectangle
            block_codes.append(pair_codes(slice(start, stop), slice(stop, n)).ravel())
        if block_codes:
            masks.update(distinct(np.concatenate(block_codes)).tolist())
    if require_attr is not None:
        bit = 1 << require_attr
        masks = {mask for mask in masks if mask & bit}
    masks.discard(0)
    return masks


def difference_sets(
    matrix: np.ndarray, rows: Optional[Sequence[int]] = None
) -> Set[AttributeSet]:
    """``D(r)``: the distinct non-empty difference sets over all tuple pairs."""
    if rows is not None:
        matrix = matrix[np.asarray(rows, dtype=np.int64), :]
    masks = _pairwise_difference_bitmasks(matrix)
    return {_bitmask_to_attrs(mask) for mask in masks}


def difference_sets_wrt(
    matrix: np.ndarray,
    rhs: int,
    rows: Optional[Sequence[int]] = None,
) -> Set[AttributeSet]:
    """``D_A(r)``: difference sets of pairs disagreeing on ``rhs``, with ``rhs`` removed."""
    if rows is not None:
        matrix = matrix[np.asarray(rows, dtype=np.int64), :]
    masks = _pairwise_difference_bitmasks(matrix, require_attr=rhs)
    return {_bitmask_to_attrs(mask, exclude=rhs) for mask in masks}


def minimal_sets(family: Iterable[AttributeSet]) -> Set[AttributeSet]:
    """The ⊆-minimal members of a family of attribute sets."""
    ordered = sorted(set(family), key=len)
    minimal: List[AttributeSet] = []
    for candidate in ordered:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return set(minimal)


def minimal_difference_sets_wrt(
    matrix: np.ndarray,
    rhs: int,
    rows: Optional[Sequence[int]] = None,
) -> Set[AttributeSet]:
    """``Dᵐ_A(r)``: the minimal difference sets with respect to ``rhs``."""
    return minimal_sets(difference_sets_wrt(matrix, rhs, rows))


__all__ = [
    "AttributeSet",
    "difference_sets",
    "difference_sets_wrt",
    "minimal_sets",
    "minimal_difference_sets_wrt",
]
