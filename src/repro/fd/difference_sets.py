"""Difference sets (Section 5.1 of the paper).

For tuples ``t1, t2`` the *difference set* ``D(t1, t2)`` is the set of
attributes on which they disagree.  FastFD and FastCFD work with the
difference sets *with respect to a RHS attribute* ``A``:

``D_A(r) = { D(t1, t2) \\ {A} : t1, t2 ∈ r, A ∈ D(t1, t2) }``

and, crucially, with its *minimal* elements ``Dᵐ_A(r)``: a set of attributes
``Y`` covers ``Dᵐ_A(r)`` iff the FD/CFD with LHS ``Y`` (and wildcards) holds.

The functions here operate on encoded integer matrices (optionally restricted
to a row subset) and keep the inner pairwise loop inside numpy.  Two
interchangeable encodings back the scan, selected by relation width behind
the same interface:

* **arity ≤ 62** — the historical int64 ``1 << attr`` bitmask path: one
  shifted-OR accumulation per column, deduplicated per block with
  ``np.bincount``/``np.unique``.
* **arity > 62** — a width-unbounded path: the boolean difference rows of a
  block are packed with :func:`numpy.packbits` into ``ceil(arity/8)``-byte
  rows, deduplicated per block with ``np.unique(axis=0)``, and accumulated
  as a set of ``bytes``.

Both return :class:`~repro.relational.attrset.AttrSet` families.  The
complexity is inherently quadratic in the number of distinct rows — that is
exactly the behaviour the paper observes for NaiveFast, and the closed-item-
set based provider in :mod:`repro.core.fastcfd` exists to avoid it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.relational.attrset import AttrSet, pack_bool_rows

AttributeSet = AttrSet

#: Widest relation the int64 bitmask fast path can encode (bit 63 is the
#: sign bit).  Above this the packbits path takes over — same interface,
#: no width ceiling.
BITMASK_MAX_ARITY = 62


#: Per-block working-set target for the blocked pairwise comparison
#: (the int64 code matrix of one block), in bytes.
_BLOCK_BUDGET_BYTES = 32 * 2 ** 20


def _pairwise_difference_bitmasks(
    matrix: np.ndarray,
    require_attr: Optional[int] = None,
    block_rows: Optional[int] = None,
) -> Set[int]:
    """Distinct difference bitmasks over all row pairs of ``matrix``
    (arity ≤ :data:`BITMASK_MAX_ARITY`).

    When ``require_attr`` is given only pairs differing on that attribute are
    reported.  Duplicate rows are removed first; identical rows produce the
    empty difference set which never matters for covers.

    The pairwise comparison runs in *row blocks*: for a block of ``B`` rows
    the bitmask codes against every later row are accumulated column by
    column into one ``B × m`` int64 matrix, then deduplicated with a single
    ``np.unique`` per block.  This bounds peak memory (``block_rows`` is
    sized to roughly :data:`_BLOCK_BUDGET_BYTES` unless given explicitly)
    while replacing the per-row Python set updates of the old implementation
    with one vectorized pass per block.
    """
    if matrix.shape[0] == 0:
        return set()
    unique = np.unique(matrix, axis=0)
    n, arity = unique.shape
    masks: Set[int] = set()
    if n < 2:
        return masks
    if block_rows is None:
        block_rows = max(1, _BLOCK_BUDGET_BYTES // (8 * n))
    columns = [unique[:, a] for a in range(arity)]

    def pair_codes(rows: slice, others: slice) -> np.ndarray:
        codes = None
        for a, column in enumerate(columns):
            differs = column[rows, None] != column[None, others]
            shifted = differs.astype(np.int64) << a
            codes = shifted if codes is None else codes.__ior__(shifted)
        return codes

    def distinct(codes: np.ndarray) -> np.ndarray:
        # There are at most 2**arity distinct masks, so for narrow relations
        # a counting pass beats the sort inside np.unique by a wide margin.
        if arity <= 22:
            return np.nonzero(np.bincount(codes, minlength=1 << arity))[0]
        return np.unique(codes)

    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        block_codes = []
        if stop - start > 1:
            # pairs inside the block: upper triangle only
            codes = pair_codes(slice(start, stop), slice(start, stop))
            block_codes.append(codes[np.triu_indices(stop - start, k=1)])
        if stop < n:
            # pairs of a block row with any later row: the full rectangle
            block_codes.append(pair_codes(slice(start, stop), slice(stop, n)).ravel())
        if block_codes:
            masks.update(distinct(np.concatenate(block_codes)).tolist())
    if require_attr is not None:
        bit = 1 << require_attr
        masks = {mask for mask in masks if mask & bit}
    masks.discard(0)
    return masks


def _pairwise_difference_bitrows(
    matrix: np.ndarray,
    require_attr: Optional[int] = None,
    block_rows: Optional[int] = None,
) -> Set[bytes]:
    """Distinct packed difference rows over all row pairs of ``matrix`` —
    the width-unbounded twin of :func:`_pairwise_difference_bitmasks`.

    Each pair's boolean difference vector is packed with ``np.packbits``
    into a ``ceil(arity/8)``-byte row; byte-equality of packed rows is
    set-equality of the difference sets, so per-block ``np.unique(axis=0)``
    plus a ``bytes`` accumulator deduplicates exactly like the int64 masks.
    """
    if matrix.shape[0] == 0:
        return set()
    unique = np.unique(matrix, axis=0)
    n, arity = unique.shape
    packed_rows: Set[bytes] = set()
    if n < 2:
        return packed_rows
    if block_rows is None:
        # One block materialises up to block_rows × n × arity boolean cells.
        block_rows = max(1, _BLOCK_BUDGET_BYTES // max(1, n * arity))

    def pair_rows(block: np.ndarray, others: np.ndarray) -> np.ndarray:
        return (block[:, None, :] != others[None, :, :]).reshape(-1, arity)

    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        block = unique[start:stop]
        segments: List[np.ndarray] = []
        if stop - start > 1:
            diff = block[:, None, :] != block[None, :, :]
            segments.append(diff[np.triu_indices(stop - start, k=1)])
        if stop < n:
            segments.append(pair_rows(block, unique[stop:n]))
        for segment in segments:
            if require_attr is not None:
                segment = segment[segment[:, require_attr]]
            if segment.shape[0] == 0:
                continue
            distinct = np.unique(pack_bool_rows(segment), axis=0)
            packed_rows.update(row.tobytes() for row in distinct)
    empty = bytes((arity + 7) // 8)
    packed_rows.discard(empty)
    return packed_rows


def _pairwise_difference_attrsets(
    matrix: np.ndarray,
    require_attr: Optional[int] = None,
    exclude: Optional[int] = None,
    block_rows: Optional[int] = None,
) -> Set[AttrSet]:
    """Distinct non-empty difference sets over all row pairs of ``matrix``.

    Duplicate rows are removed first; identical rows produce the empty
    difference set which never matters for covers.  Dispatches to the int64
    bitmask fast path when the arity fits, the packbits path otherwise.
    """
    arity = matrix.shape[1]
    if arity <= BITMASK_MAX_ARITY:
        masks = _pairwise_difference_bitmasks(matrix, require_attr, block_rows)
        return {AttrSet.from_bitmask(mask, exclude=exclude) for mask in masks}
    packed = _pairwise_difference_bitrows(matrix, require_attr, block_rows)
    out = set()
    for row in packed:
        bits = np.unpackbits(np.frombuffer(row, dtype=np.uint8), count=arity)
        attrs = np.nonzero(bits)[0]
        if exclude is not None:
            attrs = attrs[attrs != exclude]
        # A pair differing *only* on the excluded RHS decodes to the empty
        # set — kept: an empty member of D_A(r) means no LHS can work.
        out.add(AttrSet.from_indices(attrs))
    return out


def difference_sets(
    matrix: np.ndarray, rows: Optional[Sequence[int]] = None
) -> Set[AttributeSet]:
    """``D(r)``: the distinct non-empty difference sets over all tuple pairs."""
    if rows is not None:
        matrix = matrix[np.asarray(rows, dtype=np.int64), :]
    return _pairwise_difference_attrsets(matrix)


def difference_sets_wrt(
    matrix: np.ndarray,
    rhs: int,
    rows: Optional[Sequence[int]] = None,
) -> Set[AttributeSet]:
    """``D_A(r)``: difference sets of pairs disagreeing on ``rhs``, with ``rhs`` removed."""
    if rows is not None:
        matrix = matrix[np.asarray(rows, dtype=np.int64), :]
    return _pairwise_difference_attrsets(matrix, require_attr=rhs, exclude=rhs)


def minimal_sets(family: Iterable[AttributeSet]) -> Set[AttributeSet]:
    """The ⊆-minimal members of a family of attribute sets."""
    ordered = sorted(set(family), key=lambda member: (len(member), sorted(member)))
    minimal: List[AttributeSet] = []
    for candidate in ordered:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return set(minimal)


def minimal_difference_sets_wrt(
    matrix: np.ndarray,
    rhs: int,
    rows: Optional[Sequence[int]] = None,
) -> Set[AttributeSet]:
    """``Dᵐ_A(r)``: the minimal difference sets with respect to ``rhs``."""
    return minimal_sets(difference_sets_wrt(matrix, rhs, rows))


__all__ = [
    "AttributeSet",
    "BITMASK_MAX_ARITY",
    "difference_sets",
    "difference_sets_wrt",
    "minimal_sets",
    "minimal_difference_sets_wrt",
]
