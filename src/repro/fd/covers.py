"""Minimal covers of set families (hypergraph transversals).

A set of attributes ``Z`` *covers* a family ``F`` of attribute sets iff ``Z``
intersects every member of ``F``; ``Z`` is a *minimal cover* if no proper
subset of ``Z`` covers ``F`` (Section 5.1 of the paper).  FastFD — and its CFD
extension FastCFD — reduce dependency discovery to enumerating minimal covers
of minimal difference sets, which is done here with the depth-first,
left-to-right enumeration over an attribute ordering described in the paper,
optionally with the dynamic greedy reordering of Section 5.6.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from repro.relational.attrset import AttrSet

AttributeSet = AttrSet


def _member_elems(family: Iterable[AttributeSet]) -> List[frozenset]:
    """Family members as plain frozensets (C-speed disjointness tests)."""
    return [
        member.as_frozenset if isinstance(member, AttrSet) else frozenset(member)
        for member in family
    ]


def covers(candidate: Iterable[int], family: Iterable[AttributeSet]) -> bool:
    """``True`` iff ``candidate`` intersects every member of ``family``."""
    candidate = frozenset(candidate)
    return all(
        not candidate.isdisjoint(member) for member in _member_elems(family)
    )


def is_minimal_cover(candidate: Iterable[int], family: Iterable[AttributeSet]) -> bool:
    """``True`` iff ``candidate`` covers ``family`` and no proper subset does.

    Because covering is monotone it suffices to test single-element removals.
    """
    candidate = frozenset(candidate)
    members = _member_elems(family)
    if any(candidate.isdisjoint(member) for member in members):
        return False
    return _no_redundant_element(candidate, members)


def _no_redundant_element(
    candidate: frozenset, members: List[frozenset]
) -> bool:
    """``True`` iff every element of a *covering* candidate is needed."""
    for element in candidate:
        reduced = candidate - {element}
        if all(not reduced.isdisjoint(member) for member in members):
            return False
    return True


def _order_by_cover_count(
    attributes: Sequence[int], family: Sequence[AttributeSet]
) -> List[int]:
    """Covering attributes ordered by how many family members they cover
    (descending).

    Ties are broken by attribute index so the enumeration stays deterministic.
    This is the greedy cost model FastFD/FastCFD use for dynamic reordering.
    Attributes covering *no* member are dropped: the remaining family only
    shrinks along a branch, so they can never contribute to a minimal cover
    deeper down — branching on them explores an exponential number of dead
    ends on wide relations without ever yielding.
    """
    counts = {a: 0 for a in attributes}
    for member in family:
        for attribute in member:
            if attribute in counts:
                counts[attribute] += 1
    return sorted(
        (a for a in attributes if counts[a]),
        key=lambda a: (-counts[a], a),
    )


def minimal_covers(
    family: Iterable[AttributeSet],
    attributes: Sequence[int],
    *,
    dynamic_reordering: bool = True,
) -> Iterator[AttrSet]:
    """Enumerate all minimal covers of ``family`` using ``attributes``.

    Parameters
    ----------
    family:
        The sets to cover (typically minimal difference sets).
    attributes:
        The candidate attributes (the paper's ``attr(R) \\ {A}`` minus the
        constant-pattern attributes).
    dynamic_reordering:
        Reorder the remaining attributes greedily at every branch (Section
        5.6).  Turning it off gives the plain left-to-right enumeration.

    Yields
    ------
    AttrSet
        Each minimal cover exactly once (hash/eq-compatible with the
        equivalent ``frozenset``).

    Notes
    -----
    * An empty family is covered by the empty set only (yields ``AttrSet()``).
    * If some member of the family is empty no cover exists and nothing is
      yielded.
    """
    family = [
        member if isinstance(member, AttrSet) else AttrSet(member)
        for member in family
    ]
    if any(not member for member in family):
        return
    member_elems = _member_elems(family)
    seen: Set[AttrSet] = set()

    def recurse(current: Tuple[int, ...], remaining: List[AttributeSet],
                available: Sequence[int]) -> Iterator[AttrSet]:
        if not remaining:
            # ``current`` covers by construction (each branch removed the
            # members containing the chosen attribute) — only minimality
            # still needs checking.
            candidate = AttrSet(current)
            if candidate not in seen and _no_redundant_element(
                candidate.as_frozenset, member_elems
            ):
                seen.add(candidate)
                yield candidate
            return
        if not available:
            return
        if dynamic_reordering:
            order = _order_by_cover_count(available, remaining)
        else:
            # Same dead-end pruning as the reordered path, keeping the
            # plain left-to-right attribute order.
            order = [
                a
                for a in available
                if any(a in member for member in remaining)
            ]
        for position, attribute in enumerate(order):
            next_remaining = [m for m in remaining if attribute not in m]
            next_available = order[position + 1:]
            yield from recurse(current + (attribute,), next_remaining, next_available)

    yield from recurse((), family, list(attributes))


__all__ = ["covers", "is_minimal_cover", "minimal_covers"]
