"""Minimal covers of set families (hypergraph transversals).

A set of attributes ``Z`` *covers* a family ``F`` of attribute sets iff ``Z``
intersects every member of ``F``; ``Z`` is a *minimal cover* if no proper
subset of ``Z`` covers ``F`` (Section 5.1 of the paper).  FastFD — and its CFD
extension FastCFD — reduce dependency discovery to enumerating minimal covers
of minimal difference sets, which is done here with the depth-first,
left-to-right enumeration over an attribute ordering described in the paper,
optionally with the dynamic greedy reordering of Section 5.6.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

AttributeSet = FrozenSet[int]


def covers(candidate: Iterable[int], family: Iterable[AttributeSet]) -> bool:
    """``True`` iff ``candidate`` intersects every member of ``family``."""
    candidate = set(candidate)
    return all(candidate & member for member in family)


def is_minimal_cover(candidate: Iterable[int], family: Iterable[AttributeSet]) -> bool:
    """``True`` iff ``candidate`` covers ``family`` and no proper subset does.

    Because covering is monotone it suffices to test single-element removals.
    """
    candidate = set(candidate)
    family = list(family)
    if not covers(candidate, family):
        return False
    for element in candidate:
        if covers(candidate - {element}, family):
            return False
    return True


def _order_by_cover_count(
    attributes: Sequence[int], family: Sequence[AttributeSet]
) -> List[int]:
    """Attributes ordered by how many family members they cover (descending).

    Ties are broken by attribute index so the enumeration stays deterministic.
    This is the greedy cost model FastFD/FastCFD use for dynamic reordering.
    """
    counts = {a: 0 for a in attributes}
    for member in family:
        for attribute in member:
            if attribute in counts:
                counts[attribute] += 1
    return sorted(attributes, key=lambda a: (-counts[a], a))


def minimal_covers(
    family: Iterable[AttributeSet],
    attributes: Sequence[int],
    *,
    dynamic_reordering: bool = True,
) -> Iterator[FrozenSet[int]]:
    """Enumerate all minimal covers of ``family`` using ``attributes``.

    Parameters
    ----------
    family:
        The sets to cover (typically minimal difference sets).
    attributes:
        The candidate attributes (the paper's ``attr(R) \\ {A}`` minus the
        constant-pattern attributes).
    dynamic_reordering:
        Reorder the remaining attributes greedily at every branch (Section
        5.6).  Turning it off gives the plain left-to-right enumeration.

    Yields
    ------
    frozenset of int
        Each minimal cover exactly once.

    Notes
    -----
    * An empty family is covered by the empty set only (yields ``frozenset()``).
    * If some member of the family is empty no cover exists and nothing is
      yielded.
    """
    family = [frozenset(member) for member in family]
    if any(not member for member in family):
        return
    seen: Set[FrozenSet[int]] = set()

    def recurse(current: Tuple[int, ...], remaining: List[AttributeSet],
                available: Sequence[int]) -> Iterator[FrozenSet[int]]:
        if not remaining:
            candidate = frozenset(current)
            if candidate not in seen and is_minimal_cover(candidate, family):
                seen.add(candidate)
                yield candidate
            return
        if not available:
            return
        order = (
            _order_by_cover_count(available, remaining)
            if dynamic_reordering
            else list(available)
        )
        for position, attribute in enumerate(order):
            next_remaining = [m for m in remaining if attribute not in m]
            next_available = order[position + 1:]
            yield from recurse(current + (attribute,), next_remaining, next_available)

    yield from recurse((), family, list(attributes))


__all__ = ["covers", "is_minimal_cover", "minimal_covers"]
