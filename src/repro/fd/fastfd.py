"""FastFD: depth-first discovery of minimal functional dependencies [14].

FastFD is the ancestor of FastCFD (Section 5 of the paper).  For every RHS
attribute ``A`` it computes the minimal difference sets ``Dᵐ_A(r)`` and
enumerates their minimal covers depth-first; each minimal cover ``Y`` yields
the minimal FD ``Y → A``.  When ``Dᵐ_A(r)`` is empty the column ``A`` is
constant and the FD ``∅ → A`` holds.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fd.covers import minimal_covers
from repro.fd.difference_sets import minimal_difference_sets_wrt
from repro.fd.fd import FD
from repro.relational.relation import Relation


class FastFD:
    """Depth-first minimal-FD discovery via minimal covers of difference sets.

    Parameters
    ----------
    relation:
        The relation instance to profile.
    dynamic_reordering:
        Reorder attributes greedily during the cover search (Section 5.6 of
        the paper); purely a performance knob.
    """

    def __init__(self, relation: Relation, *, dynamic_reordering: bool = True):
        self._relation = relation
        self._matrix = relation.encoded_matrix()
        self._dynamic_reordering = dynamic_reordering

    def discover(self) -> List[FD]:
        """Run FastFD and return the minimal FDs of the relation."""
        names = self._relation.attributes
        arity = self._relation.arity
        results: List[FD] = []
        for rhs in range(arity):
            diff_sets = minimal_difference_sets_wrt(self._matrix, rhs)
            if not diff_sets:
                # No pair of tuples disagrees on the RHS attribute: it is a
                # constant column and the empty LHS determines it.
                results.append(FD((), names[rhs]))
                continue
            candidates = [a for a in range(arity) if a != rhs]
            for cover in minimal_covers(
                diff_sets, candidates, dynamic_reordering=self._dynamic_reordering
            ):
                results.append(FD(tuple(names[a] for a in sorted(cover)), names[rhs]))
        return results


def discover_fds_fastfd(relation: Relation, *, dynamic_reordering: bool = True) -> List[FD]:
    """Convenience wrapper: run :class:`FastFD` on ``relation``."""
    return FastFD(relation, dynamic_reordering=dynamic_reordering).discover()


__all__ = ["FastFD", "discover_fds_fastfd"]
