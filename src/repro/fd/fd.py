"""Plain functional dependencies.

The :class:`FD` value object, satisfaction, the ``g3`` error measure used in
the approximate-FD literature (referenced by the paper when contrasting
frequent CFDs with approximate FDs, Section 2.2.2) and a brute-force minimal
FD discoverer used as the oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.exceptions import DependencyError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class FD:
    """A functional dependency ``X → A`` with a single RHS attribute."""

    lhs: Tuple[str, ...]
    rhs: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", tuple(sorted(self.lhs)))
        if len(set(self.lhs)) != len(self.lhs):
            raise DependencyError(f"duplicate LHS attributes: {self.lhs}")

    @property
    def is_trivial(self) -> bool:
        """``True`` iff the RHS attribute is part of the LHS."""
        return self.rhs in self.lhs

    def __str__(self) -> str:
        return f"[{', '.join(self.lhs)}] -> {self.rhs}"


def fd_holds(relation: Relation, fd: FD) -> bool:
    """``True`` iff the FD holds exactly on the relation."""
    seen: Dict[Tuple[Hashable, ...], Hashable] = {}
    lhs_columns = [relation.column(a) for a in fd.lhs]
    rhs_column = relation.column(fd.rhs)
    for row in range(relation.n_rows):
        key = tuple(column[row] for column in lhs_columns)
        value = rhs_column[row]
        previous = seen.setdefault(key, value)
        if previous != value:
            return False
    return True


def fd_error(relation: Relation, fd: FD) -> float:
    """The ``g3`` error: the fraction of tuples to delete for the FD to hold.

    ``g3(X → A) = 1 - (Σ_groups max RHS-value count) / |r|``; an exact FD has
    error 0.
    """
    if relation.n_rows == 0:
        return 0.0
    groups: Dict[Tuple[Hashable, ...], Dict[Hashable, int]] = {}
    lhs_columns = [relation.column(a) for a in fd.lhs]
    rhs_column = relation.column(fd.rhs)
    for row in range(relation.n_rows):
        key = tuple(column[row] for column in lhs_columns)
        counts = groups.setdefault(key, {})
        value = rhs_column[row]
        counts[value] = counts.get(value, 0) + 1
    keep = sum(max(counts.values()) for counts in groups.values())
    return 1.0 - keep / relation.n_rows


def is_minimal_fd(relation: Relation, fd: FD) -> bool:
    """Nontrivial, satisfied and left-reduced (no proper LHS subset works)."""
    if fd.is_trivial or not fd_holds(relation, fd):
        return False
    for attribute in fd.lhs:
        smaller = FD(tuple(a for a in fd.lhs if a != attribute), fd.rhs)
        if fd_holds(relation, smaller):
            return False
    return True


def minimal_fds_bruteforce(relation: Relation, max_lhs: int = None) -> Set[FD]:
    """All minimal FDs of a relation by definition-level enumeration.

    Exponential in the arity; intended for small relations in tests.
    """
    attributes = relation.attributes
    limit = len(attributes) - 1 if max_lhs is None else max_lhs
    result: Set[FD] = set()
    for rhs in attributes:
        others = [a for a in attributes if a != rhs]
        for size in range(0, limit + 1):
            for lhs in combinations(others, size):
                fd = FD(lhs, rhs)
                if is_minimal_fd(relation, fd):
                    result.add(fd)
    return result


__all__ = ["FD", "fd_holds", "fd_error", "is_minimal_fd", "minimal_fds_bruteforce"]
