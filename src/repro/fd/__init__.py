"""Classical FD discovery substrate (TANE and FastFD).

CFDs generalise FDs, and the paper's CTANE / FastCFD algorithms are direct
extensions of TANE [13] and FastFD [14].  This subpackage implements the two
classical algorithms (they also serve as baselines and as the ``tp = (_,…,_)``
special case used in tests), plus the machinery they share with their CFD
extensions:

* :mod:`repro.fd.difference_sets` — agree/difference sets and their minimal
  elements (used by FastFD and FastCFD/NaiveFast);
* :mod:`repro.fd.covers` — minimal covers of set families (hypergraph
  transversals) with the FastFD depth-first enumeration;
* :mod:`repro.fd.tane` — levelwise FD discovery with partitions and C+ sets;
* :mod:`repro.fd.fastfd` — depth-first FD discovery.
"""

from repro.fd.fd import FD, fd_error, fd_holds, minimal_fds_bruteforce
from repro.fd.difference_sets import (
    difference_sets,
    difference_sets_wrt,
    minimal_sets,
)
from repro.fd.covers import covers, is_minimal_cover, minimal_covers
from repro.fd.tane import Tane
from repro.fd.fastfd import FastFD as FastFDAlgorithm

__all__ = [
    "FD",
    "fd_holds",
    "fd_error",
    "minimal_fds_bruteforce",
    "difference_sets",
    "difference_sets_wrt",
    "minimal_sets",
    "covers",
    "is_minimal_cover",
    "minimal_covers",
    "Tane",
    "FastFDAlgorithm",
]
