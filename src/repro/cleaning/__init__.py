"""CFD-based data cleaning.

The motivation of the paper is that discovered CFDs serve as *data-quality
rules*: they detect inconsistencies (Section 1, citing [1], [2]) and drive
repairs.  This subpackage provides that application layer:

* :mod:`repro.cleaning.detect` — violation detection and per-rule reports;
* :mod:`repro.cleaning.repair` — a greedy pattern-directed repair routine in
  the spirit of Cong et al. [2].
"""

from repro.cleaning.detect import (
    ViolationReport,
    detect_violations,
    dirty_rows,
    discover_and_detect,
)
from repro.cleaning.repair import RepairResult, repair

__all__ = [
    "ViolationReport",
    "detect_violations",
    "dirty_rows",
    "discover_and_detect",
    "RepairResult",
    "repair",
]
