"""Greedy CFD-directed repair.

A lightweight repair engine in the spirit of Cong et al. [2] ("Improving Data
Quality: Consistency and Accuracy"), which the paper cites as the downstream
consumer of discovered CFDs.  The algorithm repeatedly picks a violated rule
and fixes the offending right-hand-side cells:

* a *single-tuple* violation of a constant CFD is fixed by overwriting the
  tuple's RHS cell with the rule's RHS constant;
* a *pair* violation of a variable CFD is fixed by overwriting the RHS value
  of the minority tuples in the conflicting group with the group's majority
  value (ties broken deterministically).

Only RHS cells are modified (the classical "RHS repair" strategy), which
guarantees termination: each pass strictly reduces the number of conflicting
cells for the rule being repaired, and a bounded number of passes is enforced
as a safety net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cleaning.detect import detect_violations
from repro.core.cfd import CFD
from repro.core.pattern import is_wildcard
from repro.core.validation import matching_rows
from repro.exceptions import RepairError
from repro.relational.relation import Relation


@dataclass
class RepairResult:
    """The outcome of a repair run."""

    relation: Relation
    changed_cells: List[Tuple[int, str, Hashable, Hashable]] = field(default_factory=list)
    passes: int = 0
    clean: bool = True

    @property
    def n_changes(self) -> int:
        """Number of cells modified."""
        return len(self.changed_cells)

    def summary(self) -> str:
        status = "clean" if self.clean else "NOT clean"
        return (
            f"repair finished after {self.passes} pass(es): "
            f"{self.n_changes} cells changed, result is {status}"
        )


def _repair_constant_rule(
    columns: Dict[str, List[Hashable]], relation: Relation, cfd: CFD
) -> List[Tuple[int, str, Hashable, Hashable]]:
    """Force the RHS constant on every tuple matching the rule's LHS pattern."""
    changes = []
    for row in matching_rows(relation, cfd):
        current = columns[cfd.rhs][row]
        if current != cfd.rhs_pattern:
            changes.append((row, cfd.rhs, current, cfd.rhs_pattern))
            columns[cfd.rhs][row] = cfd.rhs_pattern
    return changes


def _repair_variable_rule(
    columns: Dict[str, List[Hashable]], relation: Relation, cfd: CFD
) -> List[Tuple[int, str, Hashable, Hashable]]:
    """Align conflicting groups on their majority RHS value."""
    changes = []
    groups: Dict[Tuple[Hashable, ...], List[int]] = {}
    for row in matching_rows(relation, cfd):
        key = tuple(columns[a][row] for a in cfd.lhs)
        groups.setdefault(key, []).append(row)
    for rows in groups.values():
        values = [columns[cfd.rhs][row] for row in rows]
        distinct = set(values)
        if len(distinct) <= 1:
            continue
        counts: Dict[Hashable, int] = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        majority = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))[0][0]
        for row in rows:
            current = columns[cfd.rhs][row]
            if current != majority:
                changes.append((row, cfd.rhs, current, majority))
                columns[cfd.rhs][row] = majority
    return changes


def repair(
    relation: Relation,
    cfds: Iterable[CFD],
    *,
    max_passes: int = 10,
) -> RepairResult:
    """Repair ``relation`` so that it satisfies ``cfds`` (RHS-only repairs).

    Parameters
    ----------
    relation:
        The dirty relation.
    cfds:
        The cleaning rules (typically a discovered canonical cover, possibly
        filtered by the user).
    max_passes:
        Upper bound on full repair passes; repairing one rule can reveal or
        create violations of another, so the engine iterates to a fixpoint.

    Returns
    -------
    RepairResult
        The repaired relation, the cell-level change log, the number of
        passes, and whether the result satisfies every rule.

    Raises
    ------
    RepairError
        If ``max_passes`` is not positive.
    """
    if max_passes < 1:
        raise RepairError("max_passes must be positive")
    rules = list(cfds)
    current = relation
    all_changes: List[Tuple[int, str, Hashable, Hashable]] = []
    passes = 0
    for _ in range(max_passes):
        passes += 1
        report = detect_violations(current, rules)
        if report.is_clean:
            return RepairResult(
                relation=current,
                changed_cells=all_changes,
                passes=passes,
                clean=True,
            )
        columns = {name: list(current.column(name)) for name in current.attributes}
        pass_changes: List[Tuple[int, str, Hashable, Hashable]] = []
        for cfd in rules:
            if not report.per_cfd.get(cfd):
                continue
            if cfd.is_constant:
                pass_changes.extend(_repair_constant_rule(columns, current, cfd))
            else:
                pass_changes.extend(_repair_variable_rule(columns, current, cfd))
        if not pass_changes:
            break  # violations remain but nothing is repairable with RHS edits
        all_changes.extend(pass_changes)
        current = Relation(current.schema, columns)
    final_report = detect_violations(current, rules)
    return RepairResult(
        relation=current,
        changed_cells=all_changes,
        passes=passes,
        clean=final_report.is_clean,
    )


__all__ = ["RepairResult", "repair"]
