"""Violation detection for sets of CFDs.

CFDs are constraints, so "detection" is simply evaluating each rule over the
relation and collecting its witnesses — but unlike FDs a *single* tuple can
violate a constant CFD (Example 3 of the paper), which is what makes CFDs
useful for spotting errors in isolation.  :func:`detect_violations` aggregates
per-rule witnesses into a :class:`ViolationReport` that the repair engine and
the cleaning examples consume.  :func:`discover_and_detect` closes the loop
through the unified discovery API: profile a trusted sample with one
:class:`~repro.api.DiscoveryRequest`, then audit a (possibly dirty) relation
against the discovered rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.api import DiscoveryRequest, DiscoveryResult, Profiler
from repro.core.cfd import CFD
from repro.core.pattern import is_wildcard
from repro.exceptions import DiscoveryError
from repro.core.validation import Violation, violations
from repro.relational.relation import Relation


@dataclass
class ViolationReport:
    """The result of checking a relation against a set of CFDs."""

    relation_size: int
    per_cfd: Dict[CFD, List[Violation]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def violated_cfds(self) -> List[CFD]:
        """The rules that have at least one witness."""
        return [cfd for cfd, found in self.per_cfd.items() if found]

    @property
    def total_violations(self) -> int:
        """Total number of witnessed violations across all rules."""
        return sum(len(found) for found in self.per_cfd.values())

    @property
    def dirty_rows(self) -> Set[int]:
        """Row indices involved in at least one violation."""
        rows: Set[int] = set()
        for found in self.per_cfd.values():
            for violation in found:
                rows.update(violation.rows)
        return rows

    @property
    def is_clean(self) -> bool:
        """``True`` iff no rule is violated."""
        return self.total_violations == 0

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{self.total_violations} violations across "
            f"{len(self.violated_cfds)} rules; "
            f"{len(self.dirty_rows)}/{self.relation_size} tuples affected"
        ]
        for cfd, found in sorted(
            self.per_cfd.items(), key=lambda item: -len(item[1])
        ):
            if found:
                lines.append(f"  {len(found):4d}  {cfd}")
        return "\n".join(lines)


def _provably_clean(session: Profiler, cfd: CFD) -> bool:
    """Partition-based proof that an all-wildcard rule has no violations.

    For a CFD whose pattern is wildcards throughout (an embedded FD) the rule
    holds iff the partition by the LHS attributes has exactly as many classes
    as the partition by LHS ∪ {RHS} — TANE's validity test, served from the
    session's shared attribute-partition cache.  Constant patterns are left
    to the witness scan (class counts are not sound for them, see DESIGN.md).
    """
    if not is_wildcard(cfd.rhs_pattern):
        return False
    if any(not is_wildcard(value) for value in cfd.lhs_pattern):
        return False
    lhs = session.attribute_partition(cfd.lhs)
    full = session.attribute_partition(tuple(cfd.lhs) + (cfd.rhs,))
    return lhs.n_classes == full.n_classes


def detect_violations(
    relation: Relation,
    cfds: Iterable[CFD],
    *,
    max_violations_per_cfd: int = None,
    session: Optional[Profiler] = None,
) -> ViolationReport:
    """Check every CFD against the relation and collect witnesses.

    With a ``session`` (a :class:`~repro.api.Profiler` bound to *this*
    relation) the all-wildcard rules are first checked against the session's
    cached attribute partitions; rules proven clean skip the per-witness scan
    entirely.  The report is identical either way.
    """
    if session is not None and session.relation != relation:
        raise DiscoveryError("the provided session does not profile this relation")
    report = ViolationReport(relation_size=relation.n_rows)
    for cfd in cfds:
        if session is not None and _provably_clean(session, cfd):
            report.per_cfd[cfd] = []
            continue
        report.per_cfd[cfd] = violations(
            relation, cfd, max_violations=max_violations_per_cfd
        )
    return report


def dirty_rows(relation: Relation, cfds: Iterable[CFD]) -> Set[int]:
    """Row indices involved in at least one violation of any rule."""
    return detect_violations(relation, cfds).dirty_rows


def discover_and_detect(
    sample: Relation,
    relation: Relation,
    request: Optional[DiscoveryRequest] = None,
    *,
    session: Optional[Profiler] = None,
    max_violations_per_cfd: int = None,
) -> Tuple[DiscoveryResult, ViolationReport]:
    """Profile a trusted ``sample`` for rules, then audit ``relation``.

    This is the paper's motivating workflow (discover data-quality rules,
    detect inconsistencies) as one call through the unified API.  ``request``
    defaults to mining constant CFDs only — the most actionable cleaning
    rules, Example 3 of the paper — at ``min_support=1``; pass a custom
    :class:`~repro.api.DiscoveryRequest` (or a warmed ``session`` over
    ``sample``) to tune the profiling.
    """
    if request is None:
        request = DiscoveryRequest(constant_only=True)
    if session is None:
        session = Profiler(sample)
    elif session.relation != sample:
        raise DiscoveryError("the provided session does not profile the sample")
    result = session.run(request)
    # When the audited relation IS the profiled sample (self-audit), the
    # detection pass shares the session's attribute-partition cache with the
    # discovery engines that just warmed it.
    audit_session = session if relation == sample else None
    report = detect_violations(
        relation,
        result.cfds,
        max_violations_per_cfd=max_violations_per_cfd,
        session=audit_session,
    )
    return result, report


__all__ = [
    "ViolationReport",
    "detect_violations",
    "dirty_rows",
    "discover_and_detect",
]
