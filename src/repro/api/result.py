"""Result objects of the unified discovery API.

:class:`DiscoveryResult` is the value object every discovery entry point
returns (it used to live in :mod:`repro.core.discovery`, which now re-exports
it for backward compatibility).  :class:`AlgorithmStats` normalises the
per-algorithm counters — CTANE's lattice statistics, the item-set mining
volumes of CFDMiner/FastCFD — into one uniform record instead of the ad-hoc
``extra`` dictionary of the seed API; ``extra`` is still populated from the
stats so existing callers keep working.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from repro.core.cfd import CFD
from repro.core.pattern import is_wildcard


def json_native(value: object) -> object:
    """Coerce ``value`` to strictly JSON-native types (recursively).

    ``json.dumps`` must never need a ``default=`` escape hatch on the
    documents the API emits: numpy scalars become Python numbers, mappings
    become string-keyed dicts, tuples/sets become lists (sets sorted by their
    repr for determinism), and anything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, Mapping):
        return {str(key): json_native(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_native(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((json_native(item) for item in value), key=repr)
    return str(value)


@dataclass
class AlgorithmStats:
    """Uniform per-run statistics reported by every registered algorithm.

    Counters that an algorithm does not track are ``None`` and omitted from
    :meth:`as_dict`; algorithm-specific oddities go into :attr:`extras`.
    """

    algorithm: str = ""
    #: CFD validity checks performed (CTANE's ``candidates_checked``).
    candidates_checked: Optional[int] = None
    #: Lattice elements generated across all levels (CTANE).
    elements_generated: Optional[int] = None
    #: Emitted CFDs dropped by the optional minimality re-check (CTANE).
    non_minimal_dropped: Optional[int] = None
    #: k-frequent free item sets mined (CFDMiner, FastCFD).
    free_sets: Optional[int] = None
    #: k-frequent closed item sets mined (CFDMiner, FastCFD).
    closed_sets: Optional[int] = None
    extras: Dict[str, object] = field(default_factory=dict)

    _COUNTERS = (
        "candidates_checked",
        "elements_generated",
        "non_minimal_dropped",
        "free_sets",
        "closed_sets",
    )

    def as_dict(self) -> Dict[str, object]:
        """The tracked counters (``None`` entries omitted) plus the extras."""
        out: Dict[str, object] = {}
        for name in self._COUNTERS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        out.update(self.extras)
        return out


def rule_json_dict(cfd: CFD) -> Dict[str, object]:
    """The JSON rendering of one rule (shared by documents and JSONL lines)."""
    return {
        "lhs": list(cfd.lhs),
        "lhs_pattern": [None if is_wildcard(v) else v for v in cfd.lhs_pattern],
        "rhs": cfd.rhs,
        "rhs_pattern": (
            None if is_wildcard(cfd.rhs_pattern) else cfd.rhs_pattern
        ),
        "constant": cfd.is_constant,
        "text": str(cfd),
    }


@dataclass
class DiscoveryResult:
    """The outcome of one discovery run.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the result.
    cfds:
        The discovered canonical cover.
    min_support:
        The support threshold ``k`` used.
    elapsed_seconds:
        Wall-clock time of the discovery call.
    relation_size / relation_arity:
        Shape of the profiled relation (the paper's DBSIZE and ARITY).
    extra:
        Backward-compatible dictionary view of :attr:`stats`.
    stats:
        The normalised :class:`AlgorithmStats` of the run (``None`` only for
        results built by hand).
    """

    algorithm: str
    cfds: List[CFD]
    min_support: int
    elapsed_seconds: float
    relation_size: int
    relation_arity: int
    extra: Dict[str, object] = field(default_factory=dict)
    stats: Optional[AlgorithmStats] = None

    # ------------------------------------------------------------------ #
    @property
    def constant_cfds(self) -> List[CFD]:
        """The constant CFDs of the cover."""
        return [cfd for cfd in self.cfds if cfd.is_constant]

    @property
    def variable_cfds(self) -> List[CFD]:
        """The variable CFDs of the cover."""
        return [cfd for cfd in self.cfds if cfd.is_variable]

    @property
    def n_cfds(self) -> int:
        return len(self.cfds)

    def counts(self) -> Dict[str, int]:
        """Counts of constant/variable/total CFDs (Figures 6, 9, 14-16)."""
        return {
            "constant": len(self.constant_cfds),
            "variable": len(self.variable_cfds),
            "total": len(self.cfds),
        }

    def tableaux(self):
        """The cover folded into one pattern tableau per embedded FD."""
        from repro.core.tableau import group_into_tableaux

        return group_into_tableaux(self.cfds)

    def summary(self) -> str:
        """One-line human-readable summary."""
        counts = self.counts()
        return (
            f"{self.algorithm}: {counts['total']} CFDs "
            f"({counts['constant']} constant, {counts['variable']} variable) "
            f"on |r|={self.relation_size}, arity={self.relation_arity}, "
            f"k={self.min_support} in {self.elapsed_seconds:.3f}s"
        )

    def to_json_dict(self) -> Dict[str, object]:
        """A machine-readable rendering of rules and stats (the CLI's --json).

        The document is strictly JSON-native — ``json.dumps`` needs no
        ``default=`` fallback and ``json.loads`` of the dump round-trips to
        the identical dictionary, for every algorithm's stats.
        """
        document = self._header_dict()
        document["rules"] = [rule_json_dict(cfd) for cfd in self.cfds]
        return json_native(document)

    def _header_dict(self) -> Dict[str, object]:
        """The result document without its rules (shared by JSON and JSONL)."""
        return {
            "algorithm": self.algorithm,
            "min_support": self.min_support,
            "elapsed_seconds": self.elapsed_seconds,
            "relation": {"rows": self.relation_size, "arity": self.relation_arity},
            "counts": self.counts(),
            "stats": self.stats.as_dict() if self.stats is not None else dict(self.extra),
        }

    def iter_jsonl(self) -> Iterator[str]:
        """Stream the result as JSON Lines (no trailing newlines).

        The first line is the result header (``"kind": "result"`` — everything
        :meth:`to_json_dict` carries except the rules, plus ``n_rules``); each
        following line is one rule (``"kind": "rule"``).  A cover of a hundred
        thousand rules therefore serializes in O(1) memory — this is what the
        HTTP layer's ``application/x-ndjson`` responses write chunk by chunk,
        instead of materialising one giant document.
        """
        header = self._header_dict()
        header["kind"] = "result"
        header["n_rules"] = len(self.cfds)
        yield json.dumps(json_native(header), allow_nan=False)
        for cfd in self.cfds:
            rule = rule_json_dict(cfd)
            rule["kind"] = "rule"
            yield json.dumps(json_native(rule), allow_nan=False)


__all__ = ["AlgorithmStats", "DiscoveryResult", "json_native", "rule_json_dict"]
