"""The :class:`DiscoveryRequest` configuration object.

A request captures *what* to discover — threshold, algorithm, shape limits,
rule filters, presentation preferences — as one frozen, hashable value,
replacing the scattered keyword arguments that the CLI, the experiment
harness, sampling-based discovery and the cleaning layer each re-assembled
by hand in the seed code.  Requests validate eagerly so misconfiguration
fails before any mining starts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.exceptions import DiscoveryError

#: Interest measures accepted by ``rank_by`` (see repro.core.measures).
RANKING_KEYS = ("support", "confidence", "conviction", "chi_squared")

OptionItems = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class DiscoveryRequest:
    """A complete, immutable description of one discovery run.

    Parameters
    ----------
    min_support:
        The support threshold ``k`` (at least 1).
    algorithm:
        A registered algorithm name or ``"auto"`` for capability-driven
        selection (see :meth:`repro.api.registry.AlgorithmRegistry.select`).
    max_lhs_size:
        Optional cap on the LHS size of emitted CFDs.
    constant_only / variable_only:
        Restrict the reported cover to one rule class.  ``constant_only``
        also steers ``"auto"`` towards a constant-only engine so variable
        CFDs are never mined just to be thrown away.
    rank_by:
        Order the reported rules by an interest measure (one of
        :data:`RANKING_KEYS`); ``None`` keeps the algorithm's output order.
    tableau:
        Presentation hint: group the cover into pattern tableaux.
    limit_rows:
        Profile only the first ``limit_rows`` tuples of the relation.
    options:
        Extra keyword arguments forwarded to the algorithm's constructor
        (e.g. ``{"constant_cfds": "skip"}`` for FastCFD).  Accepted as a
        mapping and normalised to a sorted tuple of items so requests stay
        hashable.

    Examples
    --------
    >>> request = DiscoveryRequest(min_support=2, algorithm="fastcfd")
    >>> request.with_support(5).min_support
    5
    """

    min_support: int = 1
    algorithm: str = "auto"
    max_lhs_size: Optional[int] = None
    constant_only: bool = False
    variable_only: bool = False
    rank_by: Optional[str] = None
    tableau: bool = False
    limit_rows: Optional[int] = None
    options: Union[OptionItems, Mapping[str, object]] = ()

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise DiscoveryError(f"invalid algorithm name: {self.algorithm!r}")
        if self.max_lhs_size is not None and self.max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be at least 1 (or None)")
        if self.constant_only and self.variable_only:
            raise DiscoveryError(
                "constant_only and variable_only are mutually exclusive"
            )
        if self.rank_by is not None and self.rank_by not in RANKING_KEYS:
            raise DiscoveryError(
                f"rank_by must be one of {RANKING_KEYS}, got {self.rank_by!r}"
            )
        if self.limit_rows is not None and self.limit_rows < 1:
            raise DiscoveryError("limit_rows must be at least 1 (or None)")
        if isinstance(self.options, Mapping):
            object.__setattr__(
                self, "options", tuple(sorted(self.options.items()))
            )
        else:
            object.__setattr__(self, "options", tuple(self.options))

    # ------------------------------------------------------------------ #
    @property
    def options_dict(self) -> Dict[str, object]:
        """The algorithm options as a plain (fresh) dictionary."""
        return dict(self.options)

    def replace(self, **changes: object) -> "DiscoveryRequest":
        """A copy of the request with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_support(self, min_support: int) -> "DiscoveryRequest":
        """The same request at a different support threshold."""
        return self.replace(min_support=min_support)

    def with_algorithm(self, algorithm: str) -> "DiscoveryRequest":
        """The same request pinned to a specific algorithm."""
        return self.replace(algorithm=algorithm)


__all__ = ["RANKING_KEYS", "DiscoveryRequest"]
