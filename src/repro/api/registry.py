"""The algorithm registry: one extensible catalogue of discovery engines.

The seed code dispatched on algorithm names with an if/elif chain in
``core/discovery.py``, so adding an engine meant editing the front-end, the
CLI and the experiment harness.  Here every engine registers itself with the
:data:`REGISTRY` via the :func:`register_algorithm` decorator, declaring
*capability metadata* (:class:`AlgorithmCapabilities`) that drives

* name-based lookup and a uniform :class:`DiscoveryAlgorithm` run interface,
* ``"auto"`` selection — the paper's Section 8 toolbox guidance expressed
  over capabilities instead of hard-coded names, and
* request validation (e.g. a variable-only request cannot be served by a
  constant-only engine).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Type

from repro.exceptions import DiscoveryError
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.profiler import Profiler
    from repro.api.request import DiscoveryRequest
    from repro.api.result import AlgorithmStats
    from repro.core.cfd import CFD

#: The arity above which ``"auto"`` prefers a depth-first engine; the paper
#: reports CTANE failing to complete beyond arity 17 and FastCFD winning by
#: orders of magnitude from arity 10-15 onwards (Section 6.2.1).
AUTO_ARITY_CUTOFF = 10

#: The relative support (k / |r|) above which ``"auto"`` prefers a levelwise
#: engine when the arity is moderate (the paper: CTANE outperforms FastCFD
#: when the support threshold is large).
AUTO_SUPPORT_RATIO_CUTOFF = 0.05


@dataclass(frozen=True)
class AlgorithmCapabilities:
    """What a discovery engine can do — the registry's dispatch metadata.

    Attributes
    ----------
    constant_cfds / variable_cfds:
        Which rule classes the engine emits.
    supports_max_lhs:
        Whether the engine honours ``max_lhs_size``.
    handles_wide_relations:
        Scales with the arity (the paper's depth-first algorithms); preferred
        by ``"auto"`` beyond :data:`AUTO_ARITY_CUTOFF`.
    prefers_high_support:
        Levelwise engines whose runtime drops as ``k`` grows; preferred by
        ``"auto"`` when ``k/|r|`` exceeds :data:`AUTO_SUPPORT_RATIO_CUTOFF`.
    max_auto_arity:
        Quantitative width ceiling for ``"auto"`` dispatch: the largest
        relation arity at which the engine is still the *right* choice
        (``None``: unbounded).  CTANE declares the paper's arity-17
        completion limit; FastCFD declares 62 — the sweet spot of its
        pairwise int64 bitmask batching, beyond which the walk-based
        ``dfd`` engine takes over.  This is dispatch guidance, not a hard
        capability: every engine now runs at any width via the
        width-unbounded :class:`~repro.relational.attrset.AttrSet` paths.
    auto_candidate:
        Eligible for ``"auto"`` selection (ablation baselines opt out).
    reported_stats:
        Names of the :class:`~repro.api.result.AlgorithmStats` counters the
        engine fills in.
    """

    constant_cfds: bool = True
    variable_cfds: bool = True
    supports_max_lhs: bool = True
    handles_wide_relations: bool = False
    prefers_high_support: bool = False
    max_auto_arity: Optional[int] = None
    auto_candidate: bool = True
    reported_stats: Tuple[str, ...] = ()


class DiscoveryAlgorithm(abc.ABC):
    """Common interface of every registered discovery engine.

    Subclasses declare a unique :attr:`name` and their
    :attr:`capabilities`, and implement :meth:`run`, returning the raw cover
    together with normalised :class:`~repro.api.result.AlgorithmStats`.
    ``session`` is the calling :class:`~repro.api.profiler.Profiler` (or
    ``None`` for one-shot runs); engines use it to reuse cached per-relation
    structures and to report progress.
    """

    name: str = ""
    capabilities: AlgorithmCapabilities = AlgorithmCapabilities()

    @abc.abstractmethod
    def run(
        self,
        relation: Relation,
        request: "DiscoveryRequest",
        session: Optional["Profiler"] = None,
    ) -> Tuple[List["CFD"], "AlgorithmStats"]:
        """Discover the canonical cover for ``request`` on ``relation``."""


class AlgorithmRegistry:
    """Registry of :class:`DiscoveryAlgorithm` classes, keyed by name."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[DiscoveryAlgorithm]] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, cls: Type[DiscoveryAlgorithm]) -> Type[DiscoveryAlgorithm]:
        """Register an algorithm class (usable as a decorator)."""
        if not (isinstance(cls, type) and issubclass(cls, DiscoveryAlgorithm)):
            raise DiscoveryError(
                f"{cls!r} is not a DiscoveryAlgorithm subclass"
            )
        name = cls.name
        if not isinstance(name, str) or not name:
            raise DiscoveryError(f"{cls.__name__} declares no algorithm name")
        if name == "auto":
            raise DiscoveryError('"auto" is reserved for registry selection')
        if name in self._classes:
            raise DiscoveryError(f"algorithm {name!r} is already registered")
        if not isinstance(cls.capabilities, AlgorithmCapabilities):
            raise DiscoveryError(
                f"{cls.__name__} declares no AlgorithmCapabilities"
            )
        self._classes[name] = cls
        return cls

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def names(self) -> Tuple[str, ...]:
        """Registered algorithm names, in registration order."""
        return tuple(self._classes)

    def choices(self) -> Tuple[str, ...]:
        """The names plus ``"auto"`` — what front-ends accept."""
        return self.names() + ("auto",)

    def get(self, name: str) -> Type[DiscoveryAlgorithm]:
        """The registered class for ``name`` (:class:`DiscoveryError` if unknown)."""
        try:
            return self._classes[name]
        except KeyError:
            raise DiscoveryError(
                f"unknown algorithm {name!r}; choose one of {self.choices()}"
            ) from None

    def create(self, name: str) -> DiscoveryAlgorithm:
        """A fresh engine instance for ``name``."""
        return self.get(name)()

    def capabilities_of(self, name: str) -> AlgorithmCapabilities:
        """The capability metadata of ``name``."""
        return self.get(name).capabilities

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[str]:
        return iter(self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    # ------------------------------------------------------------------ #
    # capability-driven auto-selection (the paper's Section 8 guidance)
    # ------------------------------------------------------------------ #
    def select(self, relation: Relation, request: "DiscoveryRequest") -> str:
        """Pick the algorithm for ``request`` from the declared capabilities.

        * A constant-only request goes to a constant-only engine (CFDMiner):
          variable CFDs are never mined just to be filtered out.
        * Wide relations (arity > :data:`AUTO_ARITY_CUTOFF`) go to the first
          engine that ``handles_wide_relations`` *and* whose quantitative
          ``max_auto_arity`` ceiling accommodates the relation — FastCFD up
          to 62 attributes, the random-walk ``dfd`` engine beyond that.
        * Large relative thresholds (k/|r| ≥
          :data:`AUTO_SUPPORT_RATIO_CUTOFF`) go to an engine that
          ``prefers_high_support`` whose width ceiling fits.
        * Otherwise a width-fitting wide-relation-capable engine wins.
        """
        candidates = [
            name
            for name, cls in self._classes.items()
            if cls.capabilities.auto_candidate
        ]
        if not candidates:
            raise DiscoveryError("no auto-selectable algorithm is registered")
        if request.constant_only:
            for name in candidates:
                caps = self._classes[name].capabilities
                if caps.constant_cfds and not caps.variable_cfds:
                    return name
        general = [
            name
            for name in candidates
            if self._classes[name].capabilities.variable_cfds
        ]
        if not general:
            raise DiscoveryError(
                "no registered algorithm can serve variable CFDs"
            )
        def width_fits(name: str) -> bool:
            ceiling = self._classes[name].capabilities.max_auto_arity
            return ceiling is None or relation.arity <= ceiling

        wide = [
            name
            for name in general
            if self._classes[name].capabilities.handles_wide_relations
        ]
        levelwise = [
            name
            for name in general
            if self._classes[name].capabilities.prefers_high_support
        ]
        wide_fit = [name for name in wide if width_fits(name)]
        levelwise_fit = [name for name in levelwise if width_fits(name)]
        if relation.arity > AUTO_ARITY_CUTOFF and wide_fit:
            return wide_fit[0]
        if (
            levelwise_fit
            and relation.n_rows
            and request.min_support / relation.n_rows >= AUTO_SUPPORT_RATIO_CUTOFF
        ):
            return levelwise_fit[0]
        if wide_fit:
            return wide_fit[0]
        return wide[0] if wide else general[0]


#: The process-wide registry that the decorator and all front doors use.
REGISTRY = AlgorithmRegistry()


def register_algorithm(cls: Type[DiscoveryAlgorithm]) -> Type[DiscoveryAlgorithm]:
    """Class decorator registering a :class:`DiscoveryAlgorithm` in :data:`REGISTRY`."""
    return REGISTRY.register(cls)


__all__ = [
    "AUTO_ARITY_CUTOFF",
    "AUTO_SUPPORT_RATIO_CUTOFF",
    "AlgorithmCapabilities",
    "AlgorithmRegistry",
    "DiscoveryAlgorithm",
    "REGISTRY",
    "register_algorithm",
]
