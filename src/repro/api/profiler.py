"""The :class:`Profiler` session and the :func:`execute` front door.

A Profiler binds to one relation and caches the expensive per-relation
structures the discovery engines share:

* the dictionary encoding / integer matrix (cached on the relation itself),
* k-frequent free/closed item-set mining results per ``(k, max_lhs_size)``
  (shared by CFDMiner and FastCFD at the same threshold),
* the closed-set difference-set provider — its 2-frequent closed-set index is
  *independent of k*, so every FastCFD run over the session reuses it no
  matter the threshold (this is what makes support sweeps like
  ``benchmarks/bench_fig08_scalability_support.py`` and sampling-based
  discovery cheap),
* the partition difference-set provider (NaiveFast) and single-attribute
  partitions, likewise k-independent.

:func:`execute` runs one :class:`~repro.api.request.DiscoveryRequest` through
the registry — with or without a session — and applies the request's rule
filters and ranking; it is the single code path behind ``repro.discover()``,
the CLI, the experiment harness, sampling and cleaning.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.api.registry import REGISTRY, AlgorithmRegistry
from repro.api.request import DiscoveryRequest
from repro.api.result import DiscoveryResult
from repro.core.fastcfd import ClosedSetDifferenceSets, PartitionDifferenceSets
from repro.exceptions import DiscoveryError
from repro.itemsets.mining import FreeClosedResult, mine_free_and_closed
from repro.relational.relation import Relation

if False:  # pragma: no cover - typing only (import would be circular)
    from repro.relational.partition import Partition

#: ``progress(stage, done, total)`` — invoked by engines during long runs.
ProgressCallback = Callable[[str, int, int], None]


def execute(
    relation: Relation,
    request: DiscoveryRequest,
    *,
    session: Optional["Profiler"] = None,
    registry: AlgorithmRegistry = REGISTRY,
) -> DiscoveryResult:
    """Run one discovery request through the registry and post-process it.

    Without a ``session`` the engines build their structures from scratch
    (the seed behaviour, which keeps benchmark timings honest); with one they
    reuse the session's caches.  ``limit_rows``, the constant/variable
    filters and ``rank_by`` of the request are applied here so every front
    end behaves identically.

    ``elapsed_seconds`` of the result times the *whole* request — truncation,
    engine run, rule filters and ranking; the engine-only share is surfaced as
    ``engine_seconds`` in the result's stats (the seed reported engine time as
    the total, silently excluding post-processing from benchmarks and
    ``--json`` output).
    """
    start = time.perf_counter()
    if request.limit_rows is not None and request.limit_rows < relation.n_rows:
        # The truncated prefix is a different relation: session caches built
        # on the full relation would be wrong (or crash) here.  With a
        # session the run is served by a pooled prefix sub-session (keyed by
        # limit_rows, so sampling re-runs reuse its caches); without one the
        # prefix is profiled one-shot.
        if session is not None:
            session = session.prefix_session(request.limit_rows)
            relation = session.relation
        else:
            relation = relation.head(request.limit_rows)
        request = request.replace(limit_rows=None)
    name = request.algorithm
    if name == "auto":
        name = registry.select(relation, request)
    engine = registry.create(name)
    if request.variable_only and not engine.capabilities.variable_cfds:
        raise DiscoveryError(
            f"algorithm {name!r} emits no variable CFDs but the request is "
            "variable-only"
        )

    engine_start = time.perf_counter()
    cfds, stats = engine.run(relation, request, session)
    engine_elapsed = time.perf_counter() - engine_start

    cfds = list(cfds)
    if request.constant_only:
        cfds = [cfd for cfd in cfds if cfd.is_constant]
    elif request.variable_only:
        cfds = [cfd for cfd in cfds if cfd.is_variable]
    if request.rank_by is not None:
        from repro.core.measures import rank_by_interest

        cfds = rank_by_interest(relation, cfds, key=request.rank_by)

    stats.extras["engine_seconds"] = engine_elapsed
    return DiscoveryResult(
        algorithm=name,
        cfds=cfds,
        min_support=request.min_support,
        elapsed_seconds=time.perf_counter() - start,
        relation_size=relation.n_rows,
        relation_arity=relation.arity,
        extra=stats.as_dict(),
        stats=stats,
    )


#: Rough bytes per encoded item / closure entry in the free/closed estimates.
_EST_ITEM_BYTES = 64

#: How many prefix sub-sessions (distinct truncating ``limit_rows`` values)
#: one session keeps warm; least recently used ones are dropped beyond this.
MAX_PREFIX_SESSIONS = 4


class Profiler:
    """A discovery session over one relation with shared structure caches.

    Sessions are **thread-safe**: one reentrant lock guards the cache
    dictionaries and the hit/miss counters, so concurrent :meth:`run` calls
    (a parallel support sweep through the serving layer) build each shared
    structure exactly once.  The expensive builds (item-set mining, the
    difference-set providers) run *outside* the lock behind per-key futures:
    the first thread pays the miss and builds, same-key callers wait on that
    build's future, and builds for **distinct** keys proceed in parallel —
    a cold 4-thread sweep mines its four thresholds concurrently.

    Examples
    --------
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows(
    ...     ["AC", "CT"],
    ...     [("908", "MH"), ("908", "MH"), ("212", "NYC")],
    ... )
    >>> profiler = Profiler(r)
    >>> low = profiler.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
    >>> high = profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
    >>> profiler.cache_info()["closed_difference_sets"]["hits"]
    1
    """

    def __init__(
        self,
        relation: Relation,
        *,
        progress: Optional[ProgressCallback] = None,
        registry: AlgorithmRegistry = REGISTRY,
    ):
        self._relation = relation
        self._registry = registry
        self.progress = progress
        self._lock = threading.RLock()
        # Expensive structures are cached as futures: lookup/insert happens
        # under the lock, the build itself outside it (see _get_or_build).
        self._free_closed: Dict[Tuple[int, Optional[int]], "Future[FreeClosedResult]"] = {}
        self._providers: Dict[str, Future] = {}
        self._partitions: Dict[Tuple[int, ...], "Partition"] = {}
        self._prefix_sessions: "OrderedDict[int, Profiler]" = OrderedDict()
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def relation(self) -> Relation:
        """The profiled relation."""
        return self._relation

    def _count(self, cache: str, hit: bool) -> None:
        bucket = self._hits if hit else self._misses
        bucket[cache] = bucket.get(cache, 0) + 1

    def _get_or_build(self, cache: str, store: Dict, key, build):
        """Serve ``store[key]``, building it at most once, outside the lock.

        The lock is held only to look up or insert the future; the first
        caller (the one who inserted it) runs ``build()`` unlocked, so
        builds for distinct keys proceed in parallel while same-key callers
        wait on the shared future.  Failed builds are evicted so a later
        call can retry.
        """
        with self._lock:
            future = store.get(key)
            if future is not None:
                self._count(cache, hit=True)
                is_builder = False
            else:
                self._count(cache, hit=False)
                future = Future()
                store[key] = future
                is_builder = True
        if not is_builder:
            return future.result()
        try:
            result = build()
        except BaseException as exc:
            with self._lock:
                if store.get(key) is future:
                    del store[key]
            future.set_exception(exc)
            raise
        future.set_result(result)
        return result

    # ------------------------------------------------------------------ #
    # cached per-relation structures
    # ------------------------------------------------------------------ #
    def free_closed(
        self, min_support: int, max_lhs_size: Optional[int] = None
    ) -> FreeClosedResult:
        """The k-frequent free/closed mining result (cached per threshold)."""
        return self._get_or_build(
            "free_closed",
            self._free_closed,
            (min_support, max_lhs_size),
            lambda: mine_free_and_closed(
                self._relation, min_support=min_support, max_size=max_lhs_size
            ),
        )

    def closed_difference_sets(self) -> ClosedSetDifferenceSets:
        """The FastCFD difference-set provider (k-independent, cached once).

        The provider is built from the session's 2-frequent closed item sets,
        so the first FastCFD run pays for the index and every later run —
        at *any* support threshold — reuses it, including its per-query
        difference-set cache.
        """
        return self._get_or_build(
            "closed_difference_sets",
            self._providers,
            "closed",
            lambda: ClosedSetDifferenceSets(
                self._relation, closed_result=self.free_closed(2)
            ),
        )

    def partition_difference_sets(self) -> PartitionDifferenceSets:
        """The NaiveFast difference-set provider (k-independent, cached once)."""
        return self._get_or_build(
            "partition_difference_sets",
            self._providers,
            "partition",
            lambda: PartitionDifferenceSets(self._relation),
        )

    def attribute_partition(self, attributes: Sequence[object]) -> "Partition":
        """The equivalence-class partition by ``attributes`` (names or indices, cached)."""
        from repro.relational.partition import attribute_partition

        key = tuple(sorted(self._relation.schema.indices_of(attributes)))
        with self._lock:
            cached = self._partitions.get(key)
            if cached is not None:
                self._count("attribute_partitions", hit=True)
                return cached
            self._count("attribute_partitions", hit=False)
            partition = attribute_partition(self._relation.encoded_matrix(), key)
            self._partitions[key] = partition
            return partition

    def prefix_session(self, limit_rows: int) -> "Profiler":
        """A pooled sub-session over the first ``limit_rows`` tuples.

        A truncating ``limit_rows`` profiles a different relation, so it can
        never share this session's caches — but repeating the same truncation
        (sampling re-runs, paging front ends) used to rebuild everything from
        scratch each time.  Prefix sub-sessions are cached per ``limit_rows``
        and tracked as the ``prefix_sessions`` bucket of :meth:`cache_info`;
        at most :data:`MAX_PREFIX_SESSIONS` distinct limits stay warm (LRU),
        so a front end sweeping many limits cannot grow the session without
        bound.  A non-truncating limit returns this session itself
        (uncounted).
        """
        with self._lock:
            if limit_rows >= self._relation.n_rows:
                return self
            cached = self._prefix_sessions.get(limit_rows)
            if cached is not None:
                self._prefix_sessions.move_to_end(limit_rows)
                self._count("prefix_sessions", hit=True)
                return cached
            self._count("prefix_sessions", hit=False)
            prefix = Profiler(
                self._relation.head(limit_rows),
                progress=self.progress,
                registry=self._registry,
            )
            self._prefix_sessions[limit_rows] = prefix
            while len(self._prefix_sessions) > MAX_PREFIX_SESSIONS:
                self._prefix_sessions.popitem(last=False)
            return prefix

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size counters of every session cache."""
        with self._lock:
            sizes = {
                "free_closed": len(self._free_closed),
                "closed_difference_sets": int("closed" in self._providers),
                "partition_difference_sets": int("partition" in self._providers),
                "attribute_partitions": len(self._partitions),
                "prefix_sessions": len(self._prefix_sessions),
            }
            info: Dict[str, Dict[str, int]] = {}
            for cache, size in sizes.items():
                info[cache] = {
                    "hits": self._hits.get(cache, 0),
                    "misses": self._misses.get(cache, 0),
                    "size": size,
                }
            return info

    @staticmethod
    def _completed(future: Future):
        """The future's result if it finished successfully, else ``None``."""
        if future.done() and future.exception() is None:
            return future.result()
        return None

    def estimated_bytes(self) -> int:
        """Approximate heap bytes held by the session's caches.

        Numpy-backed stores (tid-lists, partitions) are counted exactly via
        ``nbytes``; pure-Python structures (item sets, posting lists) use
        coarse per-item constants.  Structures still being built count as
        zero until their future completes.  Prefix sub-sessions are
        included, so the serving layer's :class:`~repro.serve.SessionPool`
        can budget a whole session tree with one call.
        """
        with self._lock:
            mining = [self._completed(f) for f in self._free_closed.values()]
            providers = [self._completed(f) for f in self._providers.values()]
            partitions = list(self._partitions.values())
            prefixes = list(self._prefix_sessions.values())
        total = 256  # the session object itself
        for result in mining:
            if result is None:
                continue
            for free in result.free_sets.values():
                total += int(free.tids.nbytes)
                total += _EST_ITEM_BYTES * (len(free.items) + len(free.closure) + 2)
        for provider in providers:
            if provider is not None:
                total += provider.estimated_bytes()
        for partition in partitions:
            total += partition.nbytes
        for prefix in prefixes:
            total += prefix.estimated_bytes()
        return total

    # ------------------------------------------------------------------ #
    # running requests
    # ------------------------------------------------------------------ #
    def run(self, request: DiscoveryRequest) -> DiscoveryResult:
        """Execute one request against the session's relation and caches.

        A truncating ``limit_rows`` profiles a different relation, so
        :func:`execute` serves it from a pooled :meth:`prefix_session`
        instead of using (or poisoning) this session's own caches.
        """
        return execute(
            self._relation, request, session=self, registry=self._registry
        )

    def discover(
        self,
        min_support: int = 1,
        *,
        algorithm: str = "auto",
        max_lhs_size: Optional[int] = None,
        **options: object,
    ) -> DiscoveryResult:
        """Keyword-style convenience wrapper around :meth:`run`."""
        return self.run(
            DiscoveryRequest(
                min_support=min_support,
                algorithm=algorithm,
                max_lhs_size=max_lhs_size,
                options=options,
            )
        )


__all__ = ["ProgressCallback", "Profiler", "execute"]
