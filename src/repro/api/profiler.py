"""The :class:`Profiler` session and the :func:`execute` front door.

A Profiler binds to one relation and caches the expensive per-relation
structures the discovery engines share:

* the dictionary encoding / integer matrix (cached on the relation itself),
* k-frequent free/closed item-set mining results per ``(k, max_lhs_size)``
  (shared by CFDMiner and FastCFD at the same threshold),
* the closed-set difference-set provider — its 2-frequent closed-set index is
  *independent of k*, so every FastCFD run over the session reuses it no
  matter the threshold (this is what makes support sweeps like
  ``benchmarks/bench_fig08_scalability_support.py`` and sampling-based
  discovery cheap),
* the partition difference-set provider (NaiveFast) and single-attribute
  partitions, likewise k-independent.

:func:`execute` runs one :class:`~repro.api.request.DiscoveryRequest` through
the registry — with or without a session — and applies the request's rule
filters and ranking; it is the single code path behind ``repro.discover()``,
the CLI, the experiment harness, sampling and cleaning.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.api.registry import REGISTRY, AlgorithmRegistry
from repro.api.request import DiscoveryRequest
from repro.api.result import DiscoveryResult
from repro.core.fastcfd import ClosedSetDifferenceSets, PartitionDifferenceSets
from repro.exceptions import DiscoveryError
from repro.itemsets.mining import FreeClosedResult, mine_free_and_closed
from repro.relational.relation import Relation

if False:  # pragma: no cover - typing only (import would be circular)
    from repro.relational.partition import Partition

#: ``progress(stage, done, total)`` — invoked by engines during long runs.
ProgressCallback = Callable[[str, int, int], None]


def execute(
    relation: Relation,
    request: DiscoveryRequest,
    *,
    session: Optional["Profiler"] = None,
    registry: AlgorithmRegistry = REGISTRY,
) -> DiscoveryResult:
    """Run one discovery request through the registry and post-process it.

    Without a ``session`` the engines build their structures from scratch
    (the seed behaviour, which keeps benchmark timings honest); with one they
    reuse the session's caches.  ``limit_rows``, the constant/variable
    filters and ``rank_by`` of the request are applied here so every front
    end behaves identically.
    """
    if request.limit_rows is not None and request.limit_rows < relation.n_rows:
        # The truncated prefix is a different relation: session caches built
        # on the full relation would be wrong (or crash) here, so drop them.
        relation = relation.head(request.limit_rows)
        request = request.replace(limit_rows=None)
        session = None
    name = request.algorithm
    if name == "auto":
        name = registry.select(relation, request)
    engine = registry.create(name)
    if request.variable_only and not engine.capabilities.variable_cfds:
        raise DiscoveryError(
            f"algorithm {name!r} emits no variable CFDs but the request is "
            "variable-only"
        )

    start = time.perf_counter()
    cfds, stats = engine.run(relation, request, session)
    elapsed = time.perf_counter() - start

    cfds = list(cfds)
    if request.constant_only:
        cfds = [cfd for cfd in cfds if cfd.is_constant]
    elif request.variable_only:
        cfds = [cfd for cfd in cfds if cfd.is_variable]
    if request.rank_by is not None:
        from repro.core.measures import rank_by_interest

        cfds = rank_by_interest(relation, cfds, key=request.rank_by)

    return DiscoveryResult(
        algorithm=name,
        cfds=cfds,
        min_support=request.min_support,
        elapsed_seconds=elapsed,
        relation_size=relation.n_rows,
        relation_arity=relation.arity,
        extra=stats.as_dict(),
        stats=stats,
    )


class Profiler:
    """A discovery session over one relation with shared structure caches.

    Examples
    --------
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows(
    ...     ["AC", "CT"],
    ...     [("908", "MH"), ("908", "MH"), ("212", "NYC")],
    ... )
    >>> profiler = Profiler(r)
    >>> low = profiler.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
    >>> high = profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
    >>> profiler.cache_info()["closed_difference_sets"]["hits"]
    1
    """

    def __init__(
        self,
        relation: Relation,
        *,
        progress: Optional[ProgressCallback] = None,
        registry: AlgorithmRegistry = REGISTRY,
    ):
        self._relation = relation
        self._registry = registry
        self.progress = progress
        self._free_closed: Dict[Tuple[int, Optional[int]], FreeClosedResult] = {}
        self._closed_provider: Optional[ClosedSetDifferenceSets] = None
        self._partition_provider: Optional[PartitionDifferenceSets] = None
        self._partitions: Dict[Tuple[int, ...], "Partition"] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def relation(self) -> Relation:
        """The profiled relation."""
        return self._relation

    def _count(self, cache: str, hit: bool) -> None:
        bucket = self._hits if hit else self._misses
        bucket[cache] = bucket.get(cache, 0) + 1

    # ------------------------------------------------------------------ #
    # cached per-relation structures
    # ------------------------------------------------------------------ #
    def free_closed(
        self, min_support: int, max_lhs_size: Optional[int] = None
    ) -> FreeClosedResult:
        """The k-frequent free/closed mining result (cached per threshold)."""
        key = (min_support, max_lhs_size)
        cached = self._free_closed.get(key)
        if cached is not None:
            self._count("free_closed", hit=True)
            return cached
        self._count("free_closed", hit=False)
        result = mine_free_and_closed(
            self._relation, min_support=min_support, max_size=max_lhs_size
        )
        self._free_closed[key] = result
        return result

    def closed_difference_sets(self) -> ClosedSetDifferenceSets:
        """The FastCFD difference-set provider (k-independent, cached once).

        The provider is built from the session's 2-frequent closed item sets,
        so the first FastCFD run pays for the index and every later run —
        at *any* support threshold — reuses it, including its per-query
        difference-set cache.
        """
        if self._closed_provider is not None:
            self._count("closed_difference_sets", hit=True)
            return self._closed_provider
        self._count("closed_difference_sets", hit=False)
        self._closed_provider = ClosedSetDifferenceSets(
            self._relation, closed_result=self.free_closed(2)
        )
        return self._closed_provider

    def partition_difference_sets(self) -> PartitionDifferenceSets:
        """The NaiveFast difference-set provider (k-independent, cached once)."""
        if self._partition_provider is not None:
            self._count("partition_difference_sets", hit=True)
            return self._partition_provider
        self._count("partition_difference_sets", hit=False)
        self._partition_provider = PartitionDifferenceSets(self._relation)
        return self._partition_provider

    def attribute_partition(self, attributes: Sequence[object]) -> "Partition":
        """The equivalence-class partition by ``attributes`` (names or indices, cached)."""
        from repro.relational.partition import attribute_partition

        key = tuple(sorted(self._relation.schema.indices_of(attributes)))
        cached = self._partitions.get(key)
        if cached is not None:
            self._count("attribute_partitions", hit=True)
            return cached
        self._count("attribute_partitions", hit=False)
        partition = attribute_partition(self._relation.encoded_matrix(), key)
        self._partitions[key] = partition
        return partition

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size counters of every session cache."""
        sizes = {
            "free_closed": len(self._free_closed),
            "closed_difference_sets": int(self._closed_provider is not None),
            "partition_difference_sets": int(self._partition_provider is not None),
            "attribute_partitions": len(self._partitions),
        }
        info: Dict[str, Dict[str, int]] = {}
        for cache, size in sizes.items():
            info[cache] = {
                "hits": self._hits.get(cache, 0),
                "misses": self._misses.get(cache, 0),
                "size": size,
            }
        return info

    # ------------------------------------------------------------------ #
    # running requests
    # ------------------------------------------------------------------ #
    def run(self, request: DiscoveryRequest) -> DiscoveryResult:
        """Execute one request against the session's relation and caches.

        A truncating ``limit_rows`` profiles a different relation, so
        :func:`execute` runs it one-shot instead of using (or poisoning)
        the session caches.
        """
        return execute(
            self._relation, request, session=self, registry=self._registry
        )

    def discover(
        self,
        min_support: int = 1,
        *,
        algorithm: str = "auto",
        max_lhs_size: Optional[int] = None,
        **options: object,
    ) -> DiscoveryResult:
        """Keyword-style convenience wrapper around :meth:`run`."""
        return self.run(
            DiscoveryRequest(
                min_support=min_support,
                algorithm=algorithm,
                max_lhs_size=max_lhs_size,
                options=options,
            )
        )


__all__ = ["ProgressCallback", "Profiler", "execute"]
