"""The :class:`Profiler` session and the :func:`execute` front door.

A Profiler binds to one relation and caches the expensive per-relation
structures the discovery engines share:

* the dictionary encoding / integer matrix (cached on the relation itself),
* k-frequent free/closed item-set mining results per ``(k, max_lhs_size)``
  (shared by CFDMiner and FastCFD at the same threshold),
* the closed-set difference-set provider — its 2-frequent closed-set index is
  *independent of k*, so every FastCFD run over the session reuses it no
  matter the threshold (this is what makes support sweeps like
  ``benchmarks/bench_fig08_scalability_support.py`` and sampling-based
  discovery cheap),
* the partition difference-set provider (NaiveFast) and single-attribute
  partitions, likewise k-independent.

:func:`execute` runs one :class:`~repro.api.request.DiscoveryRequest` through
the registry — with or without a session — and applies the request's rule
filters and ranking; it is the single code path behind ``repro.discover()``,
the CLI, the experiment harness, sampling and cleaning.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.api.registry import REGISTRY, AlgorithmRegistry
from repro.api.request import DiscoveryRequest
from repro.api.result import AlgorithmStats, DiscoveryResult
from repro.core.cfd import CFD
from repro.core.fastcfd import ClosedSetDifferenceSets, PartitionDifferenceSets
from repro.devtools.lockcheck import RANK_SESSION, ranked_lock
from repro.exceptions import DiscoveryError
from repro.itemsets.mining import FreeClosedResult, mine_free_and_closed
from repro.obs.names import (
    SPAN_ENGINE_CHECKPOINT,
    SPAN_ENGINE_RUN,
    SPAN_PROFILER_BUILD,
)
from repro.relational.relation import Relation

if False:  # pragma: no cover - typing only (import would be circular)
    from repro.relational.partition import Partition
    from repro.serve.store import CacheStore

#: ``progress(stage, done, total)`` — invoked by engines during long runs.
ProgressCallback = Callable[[str, int, int], None]


def execute(
    relation: Relation,
    request: DiscoveryRequest,
    *,
    session: Optional["Profiler"] = None,
    registry: AlgorithmRegistry = REGISTRY,
) -> DiscoveryResult:
    """Run one discovery request through the registry and post-process it.

    Without a ``session`` the engines build their structures from scratch
    (the seed behaviour, which keeps benchmark timings honest); with one they
    reuse the session's caches.  ``limit_rows``, the constant/variable
    filters and ``rank_by`` of the request are applied here so every front
    end behaves identically.

    ``elapsed_seconds`` of the result times the *whole* request — truncation,
    engine run, rule filters and ranking; the engine-only share is surfaced as
    ``engine_seconds`` in the result's stats (the seed reported engine time as
    the total, silently excluding post-processing from benchmarks and
    ``--json`` output).
    """
    start = time.perf_counter()
    root_session = session
    try:
        if request.limit_rows is not None and request.limit_rows < relation.n_rows:
            # The truncated prefix is a different relation: session caches
            # built on the full relation would be wrong (or crash) here.
            # With a session the run is served by a pooled prefix sub-session
            # (keyed by limit_rows, so sampling re-runs reuse its caches);
            # without one the prefix is profiled one-shot.
            if session is not None:
                session = session.prefix_session(request.limit_rows)
                relation = session.relation
            else:
                relation = relation.head(request.limit_rows)
            request = request.replace(limit_rows=None)
        name = request.algorithm
        if name == "auto":
            name = registry.select(relation, request)
        engine = registry.create(name)
        if request.variable_only and not engine.capabilities.variable_cfds:
            raise DiscoveryError(
                f"algorithm {name!r} emits no variable CFDs but the request is "
                "variable-only"
            )

        engine_start = time.perf_counter()
        with obs.get_tracer().start_span(SPAN_ENGINE_RUN, algorithm=name) as span:
            if session is not None:
                cfds, stats = session.engine_result(
                    name,
                    request,
                    lambda: engine.run(relation, request, session),
                )
            else:
                cfds, stats = engine.run(relation, request, session)
            span.set_attr("rules", len(cfds))
        engine_elapsed = time.perf_counter() - engine_start

        # The cached engine result is shared across runs; never mutate it.
        stats = dataclasses.replace(stats, extras=dict(stats.extras))
        cfds = list(cfds)
        if request.constant_only:
            cfds = [cfd for cfd in cfds if cfd.is_constant]
        elif request.variable_only:
            cfds = [cfd for cfd in cfds if cfd.is_variable]
        if request.rank_by is not None:
            from repro.core.measures import rank_by_interest

            cfds = rank_by_interest(relation, cfds, key=request.rank_by)

        stats.extras["engine_seconds"] = engine_elapsed
        return DiscoveryResult(
            algorithm=name,
            cfds=cfds,
            min_support=request.min_support,
            elapsed_seconds=time.perf_counter() - start,
            relation_size=relation.n_rows,
            relation_arity=relation.arity,
            extra=stats.as_dict(),
            stats=stats,
        )
    finally:
        if root_session is not None:
            # The run may have grown the session's caches: give observers
            # (the serving pool's byte accounting) a synchronous signal.
            root_session._notify_run_complete()


#: Rough bytes per encoded item / closure entry in the free/closed estimates.
_EST_ITEM_BYTES = 64

#: How many prefix sub-sessions (distinct truncating ``limit_rows`` values)
#: one session keeps warm; least recently used ones are dropped beyond this.
MAX_PREFIX_SESSIONS = 4

#: How many engine runs (canonical covers per engine configuration) one
#: session memoises; least recently used entries are dropped beyond this.
MAX_ENGINE_RESULTS = 64

#: Byte budget of the session's pattern-partition cache (the CTANE lattice
#: partitions).  Insertions beyond the budget are silently refused — the
#: cache is an accelerator, never a correctness dependency.
PATTERN_PARTITION_BUDGET_BYTES = 64 * 2 ** 20

#: The engine-configuration cache key of :meth:`Profiler.engine_result`.
EngineKey = Tuple[str, int, Optional[int], Tuple[Tuple[str, object], ...]]


class Profiler:
    """A discovery session over one relation with shared structure caches.

    Sessions are **thread-safe**: one reentrant lock guards the cache
    dictionaries and the hit/miss counters, so concurrent :meth:`run` calls
    (a parallel support sweep through the serving layer) build each shared
    structure exactly once.  The expensive builds (item-set mining, the
    difference-set providers) run *outside* the lock behind per-key futures:
    the first thread pays the miss and builds, same-key callers wait on that
    build's future, and builds for **distinct** keys proceed in parallel —
    a cold 4-thread sweep mines its four thresholds concurrently.

    Examples
    --------
    >>> from repro.relational.relation import Relation
    >>> r = Relation.from_rows(
    ...     ["AC", "CT"],
    ...     [("908", "MH"), ("908", "MH"), ("212", "NYC")],
    ... )
    >>> profiler = Profiler(r)
    >>> low = profiler.run(DiscoveryRequest(min_support=1, algorithm="fastcfd"))
    >>> high = profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
    >>> profiler.cache_info()["closed_difference_sets"]["hits"]
    1
    """

    def __init__(
        self,
        relation: Relation,
        *,
        progress: Optional[ProgressCallback] = None,
        registry: AlgorithmRegistry = REGISTRY,
        faults: Optional[object] = None,
    ):
        self._relation = relation
        self._registry = registry
        self.progress = progress
        #: Optional :class:`~repro.serve.faults.FaultPlan` threaded down from
        #: the serving layer; the engine checkpoint hook visits it so chaos
        #: drills can kill/fail a run right after a level checkpoint.
        self._faults = faults
        #: Optional :class:`~repro.serve.store.CacheStore` the session writes
        #: its mid-run engine checkpoints through (see :meth:`attach_store`).
        self._attached_store: Optional["CacheStore"] = None
        #: In-memory engine checkpoints keyed by canonical params (the
        #: in-process resume path; the attached store is the durable one).
        self._checkpoints: Dict[str, Dict] = {}
        self._lock = ranked_lock(RANK_SESSION, "Profiler._lock", reentrant=True)
        # Expensive structures are cached as futures: lookup/insert happens
        # under the lock, the build itself outside it (see _get_or_build).
        self._free_closed: Dict[Tuple[int, Optional[int]], "Future[FreeClosedResult]"] = {}
        self._providers: Dict[str, Future] = {}
        self._partitions: Dict[Tuple[int, ...], "Partition"] = {}
        self._pattern_partitions: Dict[Tuple, "Partition"] = {}
        self._pattern_bytes = 0
        self._engine_results: "OrderedDict[EngineKey, Future]" = OrderedDict()
        self._prefix_sessions: "OrderedDict[int, Profiler]" = OrderedDict()
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._build_seconds: Dict[str, float] = {}
        self._run_listeners: List[Callable[["Profiler"], None]] = []

    # ------------------------------------------------------------------ #
    @property
    def relation(self) -> Relation:
        """The profiled relation."""
        return self._relation

    def _count(self, cache: str, hit: bool) -> None:
        bucket = self._hits if hit else self._misses
        bucket[cache] = bucket.get(cache, 0) + 1

    def _get_or_build(self, cache: str, store: Dict, key, build):
        """Serve ``store[key]``, building it at most once, outside the lock.

        The lock is held only to look up or insert the future; the first
        caller (the one who inserted it) runs ``build()`` unlocked, so
        builds for distinct keys proceed in parallel while same-key callers
        wait on the shared future.  Failed builds are evicted so a later
        call can retry.
        """
        with self._lock:
            future = store.get(key)
            if (
                future is not None
                and future.done()
                and future.exception() is not None
            ):
                # Defensive re-check: a failed build is evicted by its
                # builder below, but any path that leaves an errored future
                # installed (a racing eviction, an overwritten key) would
                # poison this key until process restart — evict and rebuild.
                del store[key]
                future = None
            if future is not None:
                self._count(cache, hit=True)
                is_builder = False
            else:
                self._count(cache, hit=False)
                future = Future()
                store[key] = future
                is_builder = True
        if not is_builder:
            return future.result()
        try:
            build_start = time.perf_counter()
            with obs.get_tracer().start_span(SPAN_PROFILER_BUILD, cache=cache):
                result = build()
            build_elapsed = time.perf_counter() - build_start
        except BaseException as exc:
            with self._lock:
                if store.get(key) is future:
                    del store[key]
            future.set_exception(exc)
            raise
        with self._lock:
            self._build_seconds[cache] = (
                self._build_seconds.get(cache, 0.0) + build_elapsed
            )
        future.set_result(result)
        return result

    # ------------------------------------------------------------------ #
    # cached per-relation structures
    # ------------------------------------------------------------------ #
    def free_closed(
        self, min_support: int, max_lhs_size: Optional[int] = None
    ) -> FreeClosedResult:
        """The k-frequent free/closed mining result (cached per threshold)."""
        return self._get_or_build(
            "free_closed",
            self._free_closed,
            (min_support, max_lhs_size),
            lambda: mine_free_and_closed(
                self._relation, min_support=min_support, max_size=max_lhs_size
            ),
        )

    def closed_difference_sets(self) -> ClosedSetDifferenceSets:
        """The FastCFD difference-set provider (k-independent, cached once).

        The provider is built from the session's 2-frequent closed item sets,
        so the first FastCFD run pays for the index and every later run —
        at *any* support threshold — reuses it, including its per-query
        difference-set cache.
        """
        return self._get_or_build(
            "closed_difference_sets",
            self._providers,
            "closed",
            lambda: ClosedSetDifferenceSets(
                self._relation, closed_result=self.free_closed(2)
            ),
        )

    def partition_difference_sets(self) -> PartitionDifferenceSets:
        """The NaiveFast difference-set provider (k-independent, cached once)."""
        return self._get_or_build(
            "partition_difference_sets",
            self._providers,
            "partition",
            lambda: PartitionDifferenceSets(self._relation),
        )

    def attribute_partition(self, attributes: Sequence[object]) -> "Partition":
        """The equivalence-class partition by ``attributes`` (names or indices, cached)."""
        from repro.relational.partition import attribute_partition

        key = tuple(sorted(self._relation.schema.indices_of(attributes)))
        with self._lock:
            cached = self._partitions.get(key)
            if cached is not None:
                self._count("attribute_partitions", hit=True)
                return cached
            self._count("attribute_partitions", hit=False)
            build_start = time.perf_counter()
            partition = attribute_partition(self._relation.encoded_matrix(), key)
            self._build_seconds["attribute_partitions"] = (
                self._build_seconds.get("attribute_partitions", 0.0)
                + time.perf_counter()
                - build_start
            )
            self._partitions[key] = partition
            return partition

    # ------------------------------------------------------------------ #
    # engine-result memoisation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _engine_key(algorithm: str, request: DiscoveryRequest) -> EngineKey:
        """The engine-configuration key: everything that shapes engine output.

        Post-processing knobs (rule filters, ranking, tableau grouping) are
        deliberately excluded — they are applied per request on top of the
        cached cover, so a ``constant_only`` replay of a previous full run is
        still a cache hit.
        """
        return (algorithm, request.min_support, request.max_lhs_size, request.options)

    def engine_result(
        self, algorithm: str, request: DiscoveryRequest, build: Callable
    ) -> Tuple[Tuple[CFD, ...], AlgorithmStats]:
        """The memoised engine run for this configuration (built at most once).

        ``build`` must return the engine's ``(cfds, stats)``; the cover is
        frozen to a tuple so every caller shares one immutable copy.  Entries
        are LRU-bounded at :data:`MAX_ENGINE_RESULTS`.  Like every future-
        backed session cache, concurrent identical requests coalesce onto a
        single engine run — the across-time completion of the serving
        layer's in-flight deduplication.
        """
        key = self._engine_key(algorithm, request)

        def run_engine():
            cfds, stats = build()
            return tuple(cfds), stats

        result = self._get_or_build(
            "engine_results", self._engine_results, key, run_engine
        )
        with self._lock:
            if key in self._engine_results:
                self._engine_results.move_to_end(key)
            while len(self._engine_results) > MAX_ENGINE_RESULTS:
                self._engine_results.popitem(last=False)
        return result

    # ------------------------------------------------------------------ #
    # pattern partitions (the CTANE lattice substrate)
    # ------------------------------------------------------------------ #
    def cached_pattern_partition(self, key: Tuple) -> Optional["Partition"]:
        """The cached CTANE pattern partition ``Π(X, sp)`` for an element key.

        ``key`` is the lattice element ``(attribute_indices, pattern_codes)``
        with integer codes and :data:`~repro.core.pattern.WILDCARD` entries.
        Pattern partitions are support-independent, so a sweep at a new
        threshold re-reads the partitions mined by earlier runs.
        """
        with self._lock:
            partition = self._pattern_partitions.get(key)
            self._count("pattern_partitions", hit=partition is not None)
            return partition

    def store_pattern_partition(self, key: Tuple, partition: "Partition") -> bool:
        """Record a derived pattern partition; ``False`` if the budget is full.

        The cache is bounded by :data:`PATTERN_PARTITION_BUDGET_BYTES`;
        beyond it new partitions are simply not retained (CTANE keeps its own
        per-run references, so refusing an insert never affects results).
        """
        with self._lock:
            if key in self._pattern_partitions:
                return True
            nbytes = partition.nbytes
            if self._pattern_bytes + nbytes > PATTERN_PARTITION_BUDGET_BYTES:
                return False
            self._pattern_partitions[key] = partition
            self._pattern_bytes += nbytes
            return True

    # ------------------------------------------------------------------ #
    # engine checkpoints (crash-safe resumable CTANE runs)
    # ------------------------------------------------------------------ #
    def attach_store(self, store: Optional["CacheStore"]) -> None:
        """Bind the persistent store the engine checkpoints write through.

        The serving pool attaches its store on admission; one-shot CLI runs
        attach theirs before :meth:`run`.  With a store attached, every
        lattice level a CTANE run completes is durably checkpointed, so a
        killed process (crash, deadline, drain, chaos drill) resumes from
        the last completed level — on this worker or, via a shared cache
        directory, on the fleet successor a failover lands on.
        """
        with self._lock:
            self._attached_store = store

    def ctane_checkpoint(self, params: Dict[str, object]) -> "_CTaneCheckpoint":
        """The engine's checkpoint handle for one traversal configuration."""
        import json as json_mod

        key = json_mod.dumps(params, sort_keys=True, separators=(",", ":"))
        return _CTaneCheckpoint(self, key, params)

    def checkpoint_info(self) -> Dict[str, int]:
        """Counters of the in-memory engine checkpoints (observability)."""
        with self._lock:
            return {"entries": len(self._checkpoints)}

    # ------------------------------------------------------------------ #
    # build-cost accounting and run observers
    # ------------------------------------------------------------------ #
    def build_seconds(self) -> Dict[str, float]:
        """Observed build seconds per cache bucket (engine runs included).

        Warm-started sessions inherit the build cost recorded when the
        structures were dumped (see :meth:`warm_from`), so the serving pool's
        cost-aware eviction ranks them by what a cold rebuild would cost.
        """
        with self._lock:
            return dict(self._build_seconds)

    def build_seconds_total(self) -> float:
        """Summed observed build cost — the pool's rebuild-cost score."""
        with self._lock:
            return float(sum(self._build_seconds.values()))

    def add_run_listener(self, listener: Callable[["Profiler"], None]) -> None:
        """Register a callback fired after every :func:`execute` over this
        session (the serving pool refreshes its byte accounting with it)."""
        with self._lock:
            self._run_listeners.append(listener)

    def _notify_run_complete(self) -> None:
        with self._lock:
            if not self._run_listeners:
                return
            listeners = list(self._run_listeners)
        for listener in listeners:
            listener(self)

    def prefix_session(self, limit_rows: int) -> "Profiler":
        """A pooled sub-session over the first ``limit_rows`` tuples.

        A truncating ``limit_rows`` profiles a different relation, so it can
        never share this session's caches — but repeating the same truncation
        (sampling re-runs, paging front ends) used to rebuild everything from
        scratch each time.  Prefix sub-sessions are cached per ``limit_rows``
        and tracked as the ``prefix_sessions`` bucket of :meth:`cache_info`;
        at most :data:`MAX_PREFIX_SESSIONS` distinct limits stay warm (LRU),
        so a front end sweeping many limits cannot grow the session without
        bound.  A non-truncating limit returns this session itself
        (uncounted).
        """
        with self._lock:
            if limit_rows >= self._relation.n_rows:
                return self
            cached = self._prefix_sessions.get(limit_rows)
            if cached is not None:
                self._prefix_sessions.move_to_end(limit_rows)
                self._count("prefix_sessions", hit=True)
                return cached
            self._count("prefix_sessions", hit=False)
            prefix = Profiler(
                self._relation.head(limit_rows),
                progress=self.progress,
                registry=self._registry,
                faults=self._faults,
            )
            self._prefix_sessions[limit_rows] = prefix
            while len(self._prefix_sessions) > MAX_PREFIX_SESSIONS:
                self._prefix_sessions.popitem(last=False)
            return prefix

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size counters of every session cache."""
        with self._lock:
            sizes = {
                "free_closed": len(self._free_closed),
                "closed_difference_sets": int("closed" in self._providers),
                "partition_difference_sets": int("partition" in self._providers),
                "attribute_partitions": len(self._partitions),
                "pattern_partitions": len(self._pattern_partitions),
                "engine_results": len(self._engine_results),
                "prefix_sessions": len(self._prefix_sessions),
            }
            info: Dict[str, Dict[str, int]] = {}
            for cache, size in sizes.items():
                info[cache] = {
                    "hits": self._hits.get(cache, 0),
                    "misses": self._misses.get(cache, 0),
                    "size": size,
                }
            return info

    @staticmethod
    def _completed(future: Future):
        """The future's result if it finished successfully, else ``None``."""
        if future.done() and future.exception() is None:
            return future.result()
        return None

    def estimated_bytes(self) -> int:
        """Approximate heap bytes held by the session's caches.

        Numpy-backed stores (tid-lists, partitions) are counted exactly via
        ``nbytes``; pure-Python structures (item sets, posting lists) use
        coarse per-item constants.  Structures still being built count as
        zero until their future completes.  Prefix sub-sessions are
        included, so the serving layer's :class:`~repro.serve.SessionPool`
        can budget a whole session tree with one call.
        """
        with self._lock:
            mining = [self._completed(f) for f in self._free_closed.values()]
            providers = [self._completed(f) for f in self._providers.values()]
            partitions = list(self._partitions.values())
            patterns = list(self._pattern_partitions.values())
            engine_entries = [
                self._completed(f) for f in self._engine_results.values()
            ]
            prefixes = list(self._prefix_sessions.values())
        total = 256  # the session object itself
        for result in mining:
            if result is None:
                continue
            for free in result.free_sets.values():
                total += int(free.tids.nbytes)
                total += _EST_ITEM_BYTES * (len(free.items) + len(free.closure) + 2)
        for provider in providers:
            if provider is not None:
                total += provider.estimated_bytes()
        for partition in partitions:
            total += partition.nbytes
        for partition in patterns:
            total += partition.nbytes
        for entry in engine_entries:
            if entry is not None:
                cfds, _ = entry
                total += 256 + 96 * len(cfds)
        for prefix in prefixes:
            total += prefix.estimated_bytes()
        return total

    # ------------------------------------------------------------------ #
    # persistence: dump to / warm from a CacheStore
    # ------------------------------------------------------------------ #
    def _restore_build_seconds(self, bucket: str, meta: Dict) -> None:
        value = meta.get("build_seconds")
        if not value:
            return
        with self._lock:
            self._build_seconds[bucket] = max(
                self._build_seconds.get(bucket, 0.0), float(value)
            )

    @staticmethod
    def _completed_future(value) -> Future:
        future: Future = Future()
        future.set_result(value)
        return future

    def dump_caches(self, store: "CacheStore") -> int:
        """Spill every completed session structure into ``store``.

        One entry per ``(fingerprint, kind, params)`` key: free/closed mining
        results per threshold, the attribute- and pattern-partition bundles,
        each difference-set provider's query cache, and every memoised engine
        result whose cover survives a JSON round trip byte-identically.
        Returns the number of entries written; structures still being built
        (pending futures) are skipped.  Raises
        :class:`~repro.exceptions.CacheStoreError` on write failures.
        """
        from repro.core.pattern import is_wildcard
        from repro.serve import store as sf

        fingerprint = self._relation.fingerprint()
        with self._lock:
            mining = {k: self._completed(f) for k, f in self._free_closed.items()}
            providers = {k: self._completed(f) for k, f in self._providers.items()}
            partitions = dict(self._partitions)
            patterns = dict(self._pattern_partitions)
            engines = {k: self._completed(f) for k, f in self._engine_results.items()}
            build = dict(self._build_seconds)

        written = 0
        for (k, max_lhs), result in mining.items():
            if result is None:
                continue
            meta, arrays = sf.pack_free_closed(result)
            meta["build_seconds"] = build.get("free_closed", 0.0)
            store.put(
                fingerprint,
                sf.KIND_FREE_CLOSED,
                {"k": int(k), "max_lhs": max_lhs},
                meta=meta,
                arrays=arrays,
            )
            written += 1
        # The bundle and query-cache entries live under one *fixed* store key
        # per relation, and persisting them is a read→union→write cycle: two
        # workers sharing a store directory and spilling the same relation
        # concurrently would each read the same base, merge their own
        # additions, and the slower writer would silently drop the faster
        # one's.  Each cycle therefore runs under the store's cross-process
        # lock; acquisition is best-effort (a lock timeout degrades to the
        # old racy merge rather than failing the spill).
        if partitions:
            items = [
                ([int(i) for i in key], partition)
                for key, partition in sorted(partitions.items())
            ]
            with store.lock(fingerprint, sf.KIND_ATTRIBUTE_PARTITIONS):
                items = self._merge_bundle(
                    store, sf.KIND_ATTRIBUTE_PARTITIONS, items
                )
                meta, arrays = sf.pack_partition_bundle(items)
                meta["build_seconds"] = build.get("attribute_partitions", 0.0)
                store.put(
                    fingerprint,
                    sf.KIND_ATTRIBUTE_PARTITIONS,
                    {},
                    meta=meta,
                    arrays=arrays,
                )
            written += 1
        if patterns:
            items = []
            for (attrs, codes), partition in patterns.items():
                json_key = [
                    [int(a) for a in attrs],
                    [None if is_wildcard(c) else int(c) for c in codes],
                ]
                items.append((json_key, partition))
            with store.lock(fingerprint, sf.KIND_PATTERN_PARTITIONS):
                items = self._merge_bundle(store, sf.KIND_PATTERN_PARTITIONS, items)
                meta, arrays = sf.pack_partition_bundle(items)
                store.put(
                    fingerprint,
                    sf.KIND_PATTERN_PARTITIONS,
                    {},
                    meta=meta,
                    arrays=arrays,
                )
            written += 1
        for name, provider in providers.items():
            if provider is None:
                continue
            exported = provider.export_cache()
            with store.lock(fingerprint, f"{sf.KIND_DIFFERENCE_SETS}.{name}"):
                exported = self._merge_query_cache(store, name, exported)
                meta = sf.pack_query_cache(exported)
                meta["build_seconds"] = build.get(f"{name}_difference_sets", 0.0)
                store.put(
                    fingerprint, sf.KIND_DIFFERENCE_SETS, {"provider": name}, meta=meta
                )
            written += 1
        for (name, k, max_lhs, options), entry in engines.items():
            if entry is None:
                continue
            if not all(sf.is_json_scalar(value) for _, value in options):
                continue
            meta = sf.pack_engine_result(*entry)
            if meta is None:
                continue  # cover values would not survive a JSON round trip
            meta["build_seconds"] = build.get("engine_results", 0.0)
            store.put(
                fingerprint,
                sf.KIND_ENGINE_RESULTS,
                {
                    "algorithm": name,
                    "k": int(k),
                    "max_lhs": max_lhs,
                    "options": [[option, value] for option, value in options],
                },
                meta=meta,
            )
            written += 1
        store.enforce_budget()
        return written

    def _merge_bundle(self, store: "CacheStore", kind: str, items):
        """Union this session's bundle with the one already in the store.

        Bundles live under a single fixed key per relation, so without the
        merge a colder worker dumping *after* a warmer one would clobber the
        richer bundle.  Entries this session holds win on key conflicts; a
        missing or unreadable existing bundle merges as empty.
        """
        import json as json_mod

        from repro.serve import store as sf

        entry = store.get(self._relation.fingerprint(), kind, {})
        if entry is None:
            return items
        try:
            existing = sf.unpack_partition_bundle(entry)
        except Exception:  # noqa: BLE001 - a bad bundle merges as empty
            return items
        seen = {json_mod.dumps(key) for key, _ in items}
        merged = list(items)
        for key, partition in existing:
            if json_mod.dumps(key) not in seen:
                merged.append((key, partition))
        return merged

    def _merge_query_cache(self, store: "CacheStore", provider_name: str, exported):
        """Union a provider's query cache with the persisted one (same reason
        as :meth:`_merge_bundle`: one fixed store key per provider)."""
        from repro.serve import store as sf

        entry = store.get(
            self._relation.fingerprint(),
            sf.KIND_DIFFERENCE_SETS,
            {"provider": provider_name},
        )
        if entry is None:
            return exported
        try:
            existing = sf.unpack_query_cache(entry.meta)
        except Exception:  # noqa: BLE001 - a bad entry merges as empty
            return exported
        seen = {(rhs, items) for rhs, items, _ in exported}
        merged = list(exported)
        for rhs, items, family in existing:
            if (rhs, items) not in seen:
                merged.append((rhs, items, family))
        return merged

    def warm_from(self, store: "CacheStore") -> int:
        """Pre-seed the session caches from ``store``; returns entries loaded.

        Every malformed, truncated, version- or fingerprint-mismatched entry
        is skipped (the session simply stays cold for that structure) — a
        damaged store can never fail a request.  Structures the session
        already holds are left untouched.
        """
        from repro.core.pattern import WILDCARD
        from repro.serve import store as sf

        fingerprint = self._relation.fingerprint()
        loaded = 0
        for entry in store.load_all(fingerprint):
            try:
                if entry.kind == sf.KIND_FREE_CLOSED:
                    max_lhs = entry.params.get("max_lhs")
                    key = (
                        int(entry.params["k"]),
                        None if max_lhs is None else int(max_lhs),
                    )
                    result = sf.unpack_free_closed(entry)
                    with self._lock:
                        self._free_closed.setdefault(
                            key, self._completed_future(result)
                        )
                    self._restore_build_seconds("free_closed", entry.meta)
                elif entry.kind == sf.KIND_ATTRIBUTE_PARTITIONS:
                    for json_key, partition in sf.unpack_partition_bundle(entry):
                        key = tuple(int(i) for i in json_key)
                        with self._lock:
                            self._partitions.setdefault(key, partition)
                    self._restore_build_seconds("attribute_partitions", entry.meta)
                elif entry.kind == sf.KIND_PATTERN_PARTITIONS:
                    for json_key, partition in sf.unpack_partition_bundle(entry):
                        attrs, codes = json_key
                        key = (
                            tuple(int(a) for a in attrs),
                            tuple(
                                WILDCARD if code is None else int(code)
                                for code in codes
                            ),
                        )
                        self.store_pattern_partition(key, partition)
                elif entry.kind == sf.KIND_DIFFERENCE_SETS:
                    if not self._warm_provider(entry, sf):
                        continue
                elif entry.kind == sf.KIND_ENGINE_RESULTS:
                    cover = sf.unpack_engine_result(entry.meta)
                    max_lhs = entry.params.get("max_lhs")
                    key = (
                        str(entry.params["algorithm"]),
                        int(entry.params["k"]),
                        None if max_lhs is None else int(max_lhs),
                        tuple(
                            (str(option), value)
                            for option, value in entry.params.get("options", [])
                        ),
                    )
                    with self._lock:
                        if (
                            key not in self._engine_results
                            and len(self._engine_results) < MAX_ENGINE_RESULTS
                        ):
                            self._engine_results[key] = self._completed_future(cover)
                    self._restore_build_seconds("engine_results", entry.meta)
                else:
                    continue  # an unknown kind from a newer writer
            except Exception:  # noqa: BLE001 - any bad entry degrades to cold
                continue
            loaded += 1
        return loaded

    def _warm_provider(self, entry, sf) -> bool:
        """Install one persisted difference-set provider; ``False`` to skip."""
        name = entry.params.get("provider")
        query_cache = sf.unpack_query_cache(entry.meta)
        with self._lock:
            existing = self._providers.get(name)
        if existing is not None:
            provider = self._completed(existing)
            if provider is None:
                return False
            provider.import_cache(query_cache)
        elif name == "closed":
            # The closed-set provider is an index over the 2-frequent closed
            # item sets; rebuild it from the (already loaded) mining entry
            # rather than persisting the derived index itself.
            with self._lock:
                future = self._free_closed.get((2, None))
            closed_result = self._completed(future) if future is not None else None
            if closed_result is None:
                return False
            provider = ClosedSetDifferenceSets(
                self._relation, closed_result=closed_result
            )
            provider.import_cache(query_cache)
            with self._lock:
                self._providers.setdefault(name, self._completed_future(provider))
        elif name == "partition":
            provider = PartitionDifferenceSets(self._relation)
            provider.import_cache(query_cache)
            with self._lock:
                self._providers.setdefault(name, self._completed_future(provider))
        else:
            return False
        self._restore_build_seconds(f"{name}_difference_sets", entry.meta)
        return True

    # ------------------------------------------------------------------ #
    # running requests
    # ------------------------------------------------------------------ #
    def run(self, request: DiscoveryRequest) -> DiscoveryResult:
        """Execute one request against the session's relation and caches.

        A truncating ``limit_rows`` profiles a different relation, so
        :func:`execute` serves it from a pooled :meth:`prefix_session`
        instead of using (or poisoning) this session's own caches.
        """
        return execute(
            self._relation, request, session=self, registry=self._registry
        )

    def discover(
        self,
        min_support: int = 1,
        *,
        algorithm: str = "auto",
        max_lhs_size: Optional[int] = None,
        **options: object,
    ) -> DiscoveryResult:
        """Keyword-style convenience wrapper around :meth:`run`."""
        return self.run(
            DiscoveryRequest(
                min_support=min_support,
                algorithm=algorithm,
                max_lhs_size=max_lhs_size,
                options=options,
            )
        )


class _CTaneCheckpoint:
    """The engine-facing checkpoint handle (``load``/``save``/``clear``).

    In-memory state lives on the owning :class:`Profiler` (in-process
    resume after an injected engine error); with a store attached via
    :meth:`Profiler.attach_store` every save also writes through durably —
    best-effort, because a failing store must degrade the *resume*, never
    the run.  After the durable save the ``engine.level`` fault point is
    visited, so chaos drills kill or fail a run at exactly the moment the
    checkpoint guarantees the completed levels are safe.
    """

    def __init__(self, profiler: Profiler, key: str, params: Dict[str, object]):
        self._profiler = profiler
        self._key = key
        self._params = params

    def load(self) -> Optional[Dict]:
        profiler = self._profiler
        with profiler._lock:
            state = profiler._checkpoints.get(self._key)
            store = profiler._attached_store
        if state is not None:
            return state
        if store is None:
            return None
        from repro.serve import store as sf

        entry = store.get(
            profiler._relation.fingerprint(), sf.KIND_CTANE_CHECKPOINT, self._params
        )
        if entry is None:
            return None
        try:
            return sf.unpack_ctane_checkpoint(entry)
        except Exception:  # noqa: BLE001 - a bad checkpoint degrades to cold
            return None

    def save(self, state: Dict) -> None:
        profiler = self._profiler
        with profiler._lock:
            profiler._checkpoints[self._key] = state
            store = profiler._attached_store
        if store is not None:
            from repro.exceptions import CacheStoreError
            from repro.serve import store as sf

            with obs.get_tracer().start_span(
                SPAN_ENGINE_CHECKPOINT, level=state.get("size")
            ) as span:
                try:
                    packed = sf.pack_ctane_checkpoint(state)
                    if packed is not None:
                        meta, arrays = packed
                        store.put(
                            profiler._relation.fingerprint(),
                            sf.KIND_CTANE_CHECKPOINT,
                            self._params,
                            meta=meta,
                            arrays=arrays,
                        )
                except CacheStoreError:
                    # Resume stays in-memory only; the run must not fail.
                    span.set_status("error", error="CacheStoreError")
        faults = profiler._faults
        if faults is not None:
            # Local import: serve -> pool -> profiler already forms the
            # module import chain, so the constant cannot come in at the top.
            from repro.serve.faults import FAULT_POINT_ENGINE_LEVEL

            faults.visit(FAULT_POINT_ENGINE_LEVEL)

    def clear(self) -> None:
        profiler = self._profiler
        with profiler._lock:
            profiler._checkpoints.pop(self._key, None)
            store = profiler._attached_store
        if store is not None:
            from repro.serve import store as sf

            store.delete(
                profiler._relation.fingerprint(),
                sf.KIND_CTANE_CHECKPOINT,
                self._params,
            )


__all__ = ["ProgressCallback", "Profiler", "execute"]
