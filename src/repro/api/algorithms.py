"""Registered adapters for the toolbox's five discovery engines.

Each adapter wraps one algorithm class behind the uniform
:class:`~repro.api.registry.DiscoveryAlgorithm` interface, declares its
capability metadata, wires in the :class:`~repro.api.profiler.Profiler`
session caches (free/closed mining, difference-set providers, partitions)
when one is supplied, and normalises the engine's counters into
:class:`~repro.api.result.AlgorithmStats`.

Importing this module populates :data:`repro.api.registry.REGISTRY`; the
registration order (cfdminer, ctane, fastcfd, naivefast, dfd) is also the
precedence order used by capability-driven ``"auto"`` selection — the
quantitative ``max_auto_arity`` ceilings decide where FastCFD hands wide
relations over to the random-walk ``dfd`` engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.api.registry import (
    AlgorithmCapabilities,
    DiscoveryAlgorithm,
    register_algorithm,
)
from repro.api.result import AlgorithmStats
from repro.core.cfd import CFD
from repro.core.cfdminer import CFDMiner
from repro.core.ctane import CTane
from repro.core.dfd import DFD
from repro.core.fastcfd import FastCFD, NaiveFast
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.profiler import Profiler
    from repro.api.request import DiscoveryRequest


def _session_progress(session: Optional["Profiler"]):
    """The session's progress callback, or ``None`` for one-shot runs."""
    return session.progress if session is not None else None


@register_algorithm
class CFDMinerAlgorithm(DiscoveryAlgorithm):
    """CFDMiner: constant CFDs via free/closed item-set mining (Section 3)."""

    name = "cfdminer"
    capabilities = AlgorithmCapabilities(
        constant_cfds=True,
        variable_cfds=False,
        supports_max_lhs=True,
        reported_stats=("free_sets", "closed_sets"),
    )

    def run(
        self,
        relation: Relation,
        request: "DiscoveryRequest",
        session: Optional["Profiler"] = None,
    ) -> Tuple[List[CFD], AlgorithmStats]:
        mining = (
            session.free_closed(request.min_support, request.max_lhs_size)
            if session is not None
            else None
        )
        miner = CFDMiner(
            relation,
            request.min_support,
            max_lhs_size=request.max_lhs_size,
            mining_result=mining,
            progress=_session_progress(session),
            **request.options_dict,
        )
        cfds = miner.discover()
        mined = miner.mining_result
        stats = AlgorithmStats(
            algorithm=self.name,
            free_sets=len(mined.free_sets),
            closed_sets=len(mined.closed_to_free),
        )
        return cfds, stats


@register_algorithm
class CTaneAlgorithm(DiscoveryAlgorithm):
    """CTANE: levelwise discovery of general CFDs (Section 4)."""

    name = "ctane"
    capabilities = AlgorithmCapabilities(
        constant_cfds=True,
        variable_cfds=True,
        supports_max_lhs=True,
        prefers_high_support=True,
        # The paper reports CTANE failing to complete beyond arity 17
        # (Section 6.2.1) — "auto" never sends wider relations here.
        max_auto_arity=17,
        reported_stats=(
            "candidates_checked",
            "elements_generated",
            "non_minimal_dropped",
        ),
    )

    def run(
        self,
        relation: Relation,
        request: "DiscoveryRequest",
        session: Optional["Profiler"] = None,
    ) -> Tuple[List[CFD], AlgorithmStats]:
        ctane = CTane(
            relation,
            request.min_support,
            max_lhs_size=request.max_lhs_size,
            session=session,
            progress=_session_progress(session),
            **request.options_dict,
        )
        cfds = ctane.discover()
        extras: Dict[str, object] = {
            "resume_levels_skipped": int(ctane.resume_levels_skipped),
        }
        if ctane.resumed_level is not None:
            extras["resumed_level"] = int(ctane.resumed_level)
        stats = AlgorithmStats(
            algorithm=self.name,
            candidates_checked=ctane.candidates_checked,
            elements_generated=ctane.elements_generated,
            non_minimal_dropped=ctane.non_minimal_dropped,
            extras=extras,
        )
        return cfds, stats


@register_algorithm
class FastCFDAlgorithm(DiscoveryAlgorithm):
    """FastCFD: depth-first discovery with closed-set difference sets (Section 5)."""

    name = "fastcfd"
    capabilities = AlgorithmCapabilities(
        constant_cfds=True,
        variable_cfds=True,
        supports_max_lhs=True,
        handles_wide_relations=True,
        # The sweet spot of the pairwise int64 bitmask batching; wider
        # relations auto-dispatch to the walk-based "dfd" engine (FastCFD
        # itself still runs at any width via the packbits path).
        max_auto_arity=62,
        reported_stats=("free_sets", "closed_sets"),
    )

    #: The algorithm class instantiated (NaiveFast overrides this).
    algorithm_class = FastCFD

    def run(
        self,
        relation: Relation,
        request: "DiscoveryRequest",
        session: Optional["Profiler"] = None,
    ) -> Tuple[List[CFD], AlgorithmStats]:
        options: Dict[str, object] = request.options_dict
        free_result = None
        if session is not None:
            free_result = session.free_closed(
                request.min_support, request.max_lhs_size
            )
            if "difference_sets" not in options:
                options["difference_sets"] = self._session_provider(session)
        engine = self.algorithm_class(
            relation,
            request.min_support,
            max_lhs_size=request.max_lhs_size,
            free_result=free_result,
            progress=_session_progress(session),
            **options,
        )
        cfds = engine.discover()
        mined = engine.free_result
        stats = AlgorithmStats(
            algorithm=self.name,
            free_sets=len(mined.free_sets),
            closed_sets=len(mined.closed_to_free),
        )
        return cfds, stats

    @staticmethod
    def _session_provider(session: "Profiler"):
        """The session-cached difference-set provider for this engine."""
        return session.closed_difference_sets()


@register_algorithm
class NaiveFastAlgorithm(FastCFDAlgorithm):
    """NaiveFast: FastCFD with partition-based difference sets (ablation baseline).

    Identical output to FastCFD; kept out of ``"auto"`` selection because it
    exists to exhibit the DBSIZE sensitivity the paper reports.
    """

    name = "naivefast"
    capabilities = AlgorithmCapabilities(
        constant_cfds=True,
        variable_cfds=True,
        supports_max_lhs=True,
        handles_wide_relations=True,
        auto_candidate=False,
        reported_stats=("free_sets", "closed_sets"),
    )

    algorithm_class = NaiveFast

    @staticmethod
    def _session_provider(session: "Profiler"):
        return session.partition_difference_sets()


@register_algorithm
class DFDAlgorithm(DiscoveryAlgorithm):
    """DFD: seeded random-walk lattice traversal for wide relations.

    Output-identical to FastCFD (and asserted against CTANE on seeded
    fixtures), but decides node validity directly on the partition substrate
    instead of pairwise difference sets, so runtime scales with the size of
    the dependency boundary rather than the full lattice — the engine of
    choice for 100+-column relations.  The ``{"seed": int}`` request option
    seeds the walk; the cover is byte-identical for every seed.
    """

    name = "dfd"
    capabilities = AlgorithmCapabilities(
        constant_cfds=True,
        variable_cfds=True,
        supports_max_lhs=True,
        handles_wide_relations=True,
        reported_stats=(
            "candidates_checked",
            "free_sets",
            "closed_sets",
            "nodes_visited",
            "partitions_computed",
            "restarts",
            "walk_seed",
        ),
    )

    def run(
        self,
        relation: Relation,
        request: "DiscoveryRequest",
        session: Optional["Profiler"] = None,
    ) -> Tuple[List[CFD], AlgorithmStats]:
        free_result = None
        if session is not None:
            free_result = session.free_closed(
                request.min_support, request.max_lhs_size
            )
        engine = DFD(
            relation,
            request.min_support,
            max_lhs_size=request.max_lhs_size,
            free_result=free_result,
            session=session,
            progress=_session_progress(session),
            **request.options_dict,
        )
        cfds = engine.discover()
        mined = engine.free_result
        extras: Dict[str, object] = {
            "nodes_visited": int(engine.nodes_visited),
            "partitions_computed": int(engine.partitions_computed),
            "restarts": int(engine.restarts),
            "walk_seed": int(engine.seed),
        }
        stats = AlgorithmStats(
            algorithm=self.name,
            candidates_checked=engine.candidates_checked,
            free_sets=len(mined.free_sets),
            closed_sets=len(mined.closed_to_free),
            extras=extras,
        )
        return cfds, stats


__all__ = [
    "CFDMinerAlgorithm",
    "CTaneAlgorithm",
    "FastCFDAlgorithm",
    "NaiveFastAlgorithm",
    "DFDAlgorithm",
]
