"""The unified discovery API — the canonical front door of the library.

The paper positions CFDMiner, CTANE and FastCFD as a *toolbox* (Section 8);
this package makes that toolbox a first-class, extensible API:

* :data:`~repro.api.registry.REGISTRY` /
  :func:`~repro.api.registry.register_algorithm` — every engine registers
  itself with :class:`~repro.api.registry.AlgorithmCapabilities` metadata
  that drives lookup and ``"auto"`` selection;
* :class:`~repro.api.request.DiscoveryRequest` — one frozen configuration
  object instead of scattered keyword arguments;
* :class:`~repro.api.profiler.Profiler` — a session over one relation that
  caches encodings, item-set mining results and difference-set providers so
  repeated runs (support sweeps, sampling validation) skip recomputation;
* :func:`~repro.api.profiler.execute` — the single execution path used by
  ``repro.discover()``, the CLI, the experiment harness, sampling-based
  discovery and the cleaning layer.

Quickstart
----------
>>> from repro.relational.relation import Relation
>>> from repro.api import DiscoveryRequest, Profiler
>>> r = Relation.from_rows(
...     ["AC", "CT"],
...     [("908", "MH"), ("908", "MH"), ("212", "NYC")],
... )
>>> profiler = Profiler(r)
>>> result = profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
>>> "([AC] -> CT, (908 || MH))" in {str(cfd) for cfd in result.cfds}
True
"""

from repro.api.registry import (
    AUTO_ARITY_CUTOFF,
    AUTO_SUPPORT_RATIO_CUTOFF,
    AlgorithmCapabilities,
    AlgorithmRegistry,
    DiscoveryAlgorithm,
    REGISTRY,
    register_algorithm,
)
from repro.api.request import RANKING_KEYS, DiscoveryRequest
from repro.api.result import AlgorithmStats, DiscoveryResult

# Importing the adapters populates the registry with the paper's engines.
import repro.api.algorithms  # noqa: E402,F401  (registration side effect)

from repro.api.profiler import ProgressCallback, Profiler, execute

__all__ = [
    "AUTO_ARITY_CUTOFF",
    "AUTO_SUPPORT_RATIO_CUTOFF",
    "AlgorithmCapabilities",
    "AlgorithmRegistry",
    "AlgorithmStats",
    "DiscoveryAlgorithm",
    "DiscoveryRequest",
    "DiscoveryResult",
    "ProgressCallback",
    "Profiler",
    "RANKING_KEYS",
    "REGISTRY",
    "execute",
    "register_algorithm",
]
