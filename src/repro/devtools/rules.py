"""The REP001–REP009 invariant rules (``repro.devtools.rules``).

Each rule encodes one invariant DESIGN.md states in prose.  Rules are
path-scoped (see :class:`~repro.devtools.lint.Rule`), so the same code
fires on ``src/repro`` and on the fixture trees under
``tests/devtools/fixtures`` that mirror the scoped directory shapes.

| id     | invariant                                                        |
|--------|------------------------------------------------------------------|
| REP001 | lock order service → pool → session; no expensive build under a  |
|        | held ranked lock                                                 |
| REP002 | no blocking calls directly inside ``async def`` in serve/http,   |
|        | serve/fleet — hop to an executor                                 |
| REP003 | fault-point literals must come from the canonical registry; CLI  |
|        | ``--fault`` help and DESIGN.md must track it                     |
| REP004 | metric families ``repro_[a-z0-9_]+``; counters end ``_total``;   |
|        | no duplicate registration across metrics modules                 |
| REP005 | results stay JSON-native — no ``json.dumps(default=...)`` escape |
| REP006 | engine modules: no unordered set iteration feeding output, no    |
|        | unseeded module-level RNG, no wall-clock calls                   |
| REP007 | every ``except Exception`` carries ``# noqa: BLE001 - <reason>`` |
| REP008 | arrays serialized into the CacheStore use allowlisted dtypes     |
| REP009 | span names come from the ``repro.obs.names`` registry and match  |
|        | ``repro.[a-z0-9_.]+``; DESIGN.md's span taxonomy tracks the set  |
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devtools.lint import (
    FileContext,
    Finding,
    LintProject,
    Rule,
    call_name,
    dotted_name,
    keyword_arg,
    string_value,
)

__all__ = ["all_rules", "RULE_CLASSES"]


def _registry_fault_points() -> Tuple[str, ...]:
    """The canonical injection points, from the single source of truth."""
    try:
        from repro.serve.faults import FAULT_POINTS

        return tuple(FAULT_POINTS)
    except ImportError:  # pragma: no cover - repro.serve not importable
        return (
            "store.put",
            "store.get",
            "engine.level",
            "service.execute",
            "fleet.send",
            "fleet.poll",
        )


def _registry_span_names() -> Tuple[str, ...]:
    """The canonical span names, from the single source of truth."""
    try:
        from repro.obs.names import SPAN_NAMES

        return tuple(SPAN_NAMES)
    except ImportError:  # pragma: no cover - repro.obs not importable
        return (
            "repro.fleet.request",
            "repro.http.request",
            "repro.service.execute",
            "repro.pool.admit",
            "repro.store.put",
            "repro.engine.run",
        )


def _store_dtype_allowlist() -> frozenset:
    try:
        from repro.serve.store import ALLOWED_DTYPES

        return frozenset(ALLOWED_DTYPES)
    except ImportError:  # pragma: no cover - repro.serve not importable
        return frozenset(
            {"int8", "int16", "int32", "int64", "uint8", "uint16",
             "uint32", "uint64", "float32", "float64", "bool"}
        )


# --------------------------------------------------------------------- #
# REP001 — lock order
# --------------------------------------------------------------------- #
#: Substring hints mapping a lock owner (class or variable name, lowered)
#: to its rank.  Order matters: ``SessionPool`` must match ``pool`` before
#: ``session``.
_LOCK_OWNER_HINTS: Tuple[Tuple[str, int], ...] = (
    ("service", 10),
    ("pool", 20),
    ("profiler", 30),
    ("session", 30),
    ("provider", 40),
    ("difference", 40),
)

_RANK_LABELS = {10: "service", 20: "pool", 30: "session", 40: "provider"}

#: Ranks backed by a non-reentrant ``threading.Lock`` — nesting the *same*
#: lock is a self-deadlock, not a no-op.
_NON_REENTRANT_RANKS = frozenset({10})

#: Calls that are expensive builds / engine executions and must never run
#: under a held ranked lock (the build-outside-the-lock futures pattern).
_EXPENSIVE_CALLS = frozenset(
    {
        "run",
        "run_batch",
        "sweep",
        "execute",
        "mine_free_closed",
        "dump_caches",
        "warm_from",
        "load_all",
        "relation_fingerprint",
        "fingerprint",
        "run_engine",
    }
)


def _rank_from_owner(owner: str) -> Optional[int]:
    lowered = owner.lower()
    for hint, rank in _LOCK_OWNER_HINTS:
        if hint in lowered:
            return rank
    return None


class LockOrderRule(Rule):
    id = "REP001"
    name = "lock-order"
    summary = (
        "service -> pool -> session lock rank must never invert, and "
        "expensive builds must not run under a held ranked lock"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                class_name = node.name
            elif isinstance(node, ast.Module):
                class_name = ""
            else:
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._check_function(ctx, child, class_name, findings)
        return findings

    # -- per-function nesting walk ------------------------------------- #
    def _lock_rank(
        self, expr: ast.AST, class_name: str
    ) -> Optional[Tuple[int, str]]:
        """``(rank, expr_text)`` when ``expr`` is a recognizable ranked lock."""
        if not isinstance(expr, ast.Attribute):
            return None
        if "lock" not in expr.attr or expr.attr.endswith("lock_file"):
            return None
        if not expr.attr.startswith("_"):
            return None  # ``store.lock(...)`` style helpers are not locks
        base = expr.value
        if isinstance(base, ast.Name):
            owner = class_name if base.id == "self" else base.id
        elif isinstance(base, ast.Attribute):
            owner = base.attr
        else:
            return None
        rank = _rank_from_owner(owner)
        if rank is None:
            return None
        return rank, dotted_name(expr)

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.AST,
        class_name: str,
        findings: List[Finding],
    ) -> None:
        held: List[Tuple[int, str]] = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                return  # nested defs run later, with their own stack
            if isinstance(node, (ast.With, ast.AsyncWith)):
                pushed = 0
                for item in node.items:
                    ranked = self._lock_rank(item.context_expr, class_name)
                    if ranked is None:
                        continue
                    rank, text = ranked
                    self._check_acquire(ctx, item.context_expr, rank, text, held, findings)
                    held.append((rank, text))
                    pushed += 1
                for child in node.body:
                    visit(child)
                del held[len(held) - pushed : len(held)]
                return
            if isinstance(node, ast.Call) and held:
                tail = call_name(node).rsplit(".", 1)[-1]
                if tail in _EXPENSIVE_CALLS:
                    locks = ", ".join(text for _, text in held)
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"expensive call '{call_name(node)}' under held "
                            f"lock(s) [{locks}]; build outside the lock "
                            "behind a per-key future instead",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child)

        for statement in func.body:
            visit(statement)

    def _check_acquire(
        self,
        ctx: FileContext,
        node: ast.AST,
        rank: int,
        text: str,
        held: List[Tuple[int, str]],
        findings: List[Finding],
    ) -> None:
        if not held:
            return
        for held_rank, held_text in held:
            if held_text == text:
                if rank in _NON_REENTRANT_RANKS:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"non-reentrant {_RANK_LABELS.get(rank, rank)} "
                            f"lock '{text}' acquired while already held — "
                            "self-deadlock",
                        )
                    )
                return  # RLock re-entry is fine
        worst_rank, worst_text = max(held, key=lambda item: item[0])
        if worst_rank >= rank:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"lock-order inversion: acquiring "
                    f"{_RANK_LABELS.get(rank, rank)} lock '{text}' while "
                    f"holding {_RANK_LABELS.get(worst_rank, worst_rank)} "
                    f"lock '{worst_text}'; the permitted order is "
                    "service -> pool -> session",
                )
            )


# --------------------------------------------------------------------- #
# REP002 — no blocking calls in async defs
# --------------------------------------------------------------------- #
_BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "os.system",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
    }
)

#: Sync discovery entry points: calling these on a service/profiler object
#: from a coroutine runs an engine on the event loop.
_BLOCKING_SERVICE_TAILS = frozenset({"run", "run_batch", "sweep"})
_SERVICE_BASE_HINTS = ("service", "profiler", "session")


class NoBlockingInAsyncRule(Rule):
    id = "REP002"
    name = "no-blocking-in-async"
    summary = (
        "no blocking calls (sleep, sync I/O, sync discovery runs, "
        "Future.result) directly inside async def bodies in serve/http "
        "and serve/fleet"
    )
    scope = ("*/serve/http/*.py", "*/serve/fleet/*.py")

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            self._check_async_body(ctx, node, findings)
        return findings

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef, findings: List[Finding]
    ) -> None:
        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                return  # a nested def is not executed on the loop here
            if isinstance(node, ast.Call):
                self._check_call(ctx, func, node, findings)
            for child in ast.iter_child_nodes(node):
                visit(child)

        for statement in func.body:
            visit(statement)

    def _check_call(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        node: ast.Call,
        findings: List[Finding],
    ) -> None:
        name = call_name(node)
        tail = name.rsplit(".", 1)[-1]
        blocking: Optional[str] = None
        if name in _BLOCKING_DOTTED:
            blocking = name
        elif name == "open":
            blocking = "open"
        elif tail == "result" and isinstance(node.func, ast.Attribute):
            blocking = f"{name}()"
        elif tail in _BLOCKING_SERVICE_TAILS and isinstance(node.func, ast.Attribute):
            base = dotted_name(node.func.value).rsplit(".", 1)[-1].lower()
            if any(hint in base for hint in _SERVICE_BASE_HINTS):
                blocking = name
        if blocking is not None:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"blocking call '{blocking}' inside 'async def "
                    f"{func.name}' — hop to an executor "
                    "(loop.run_in_executor) or use the asyncio equivalent",
                )
            )


# --------------------------------------------------------------------- #
# REP003 — fault-point names
# --------------------------------------------------------------------- #
class FaultPointNamesRule(Rule):
    id = "REP003"
    name = "fault-point-names"
    summary = (
        "string literals reaching FaultPlan.visit() must be canonical "
        "fault points; --fault CLI help must reference FAULT_POINTS; "
        "DESIGN.md's failure-model table must list exactly that set"
    )

    def __init__(self) -> None:
        self.points = frozenset(_registry_fault_points())

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            self._check_visit(ctx, node, findings)
            self._check_fault_help(ctx, node, findings)
        return findings

    def _check_visit(
        self, ctx: FileContext, node: ast.Call, findings: List[Finding]
    ) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        tail = node.func.attr
        if tail == "visit":
            base = dotted_name(node.func.value).lower()
            if "fault" not in base and "plan" not in base:
                return  # an unrelated .visit() (e.g. an ast.NodeVisitor)
        elif tail != "_visit_fault":
            return
        if not node.args:
            return
        literal = string_value(node.args[0])
        if literal is None:
            return
        if any(wildcard in literal for wildcard in "*?["):
            return  # fnmatch patterns are rule specs, not visit points
        if literal not in self.points:
            expected = ", ".join(sorted(self.points))
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"fault point {literal!r} is not in the canonical "
                    f"registry ({expected}); import the FAULT_POINT_* "
                    "constant from repro.serve.faults",
                )
            )

    def _check_fault_help(
        self, ctx: FileContext, node: ast.Call, findings: List[Finding]
    ) -> None:
        if not ctx.posix.endswith("cli.py"):
            return
        if call_name(node).rsplit(".", 1)[-1] != "add_argument":
            return
        if not node.args or string_value(node.args[0]) != "--fault":
            return
        help_node = keyword_arg(node, "help")
        if help_node is None:
            findings.append(
                self.finding(ctx, node, "--fault has no help text")
            )
            return
        for sub in ast.walk(help_node):
            if isinstance(sub, ast.Name) and sub.id in (
                "FAULT_POINTS",
                "fault_points_help",
            ):
                return
            if isinstance(sub, ast.Attribute) and sub.attr in (
                "FAULT_POINTS",
                "fault_points_help",
            ):
                return
        findings.append(
            self.finding(
                ctx,
                node,
                "--fault help does not reference the canonical "
                "FAULT_POINTS registry (repro.serve.faults); build the "
                "point list from fault_points_help()",
            )
        )

    def finalize(self, project: LintProject) -> List[Finding]:
        design = self._find_design(project)
        if design is None:
            return []
        return self._check_design(design)

    @staticmethod
    def _find_design(project: LintProject):
        current = project.root.resolve()
        for _ in range(5):
            candidate = current / "DESIGN.md"
            if candidate.is_file():
                return candidate
            if current.parent == current:
                break
            current = current.parent
        return None

    def _check_design(self, design) -> List[Finding]:
        try:
            text = design.read_text(encoding="utf-8")
        except OSError:
            return []
        documented: Dict[str, int] = {}
        table_line = 0
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = re.match(r"^\|\s*`([a-z_]+\.[a-z_]+)`\s*\|", line)
            if match:
                documented.setdefault(match.group(1), lineno)
                table_line = table_line or lineno
        if not documented:
            return []  # no failure-model table in this DESIGN.md
        findings: List[Finding] = []
        for point in sorted(self.points - set(documented)):
            findings.append(
                Finding(
                    self.id,
                    design.as_posix(),
                    table_line or 1,
                    0,
                    f"canonical fault point {point!r} is missing from the "
                    "DESIGN.md failure-model table",
                )
            )
        for point, lineno in sorted(documented.items()):
            if point not in self.points:
                findings.append(
                    Finding(
                        self.id,
                        design.as_posix(),
                        lineno,
                        0,
                        f"DESIGN.md documents fault point {point!r} which "
                        "is not in the canonical registry",
                    )
                )
        return findings


# --------------------------------------------------------------------- #
# REP004 — metrics naming
# --------------------------------------------------------------------- #
_FAMILY_RE = re.compile(r"repro_[a-z0-9_]+")
_FAMILY_STRICT_RE = re.compile(r"^repro_[a-z0-9_]+$")
_METRIC_CTORS = {"Counter": "counter", "Gauge": "gauge", "Histogram": "histogram"}
_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})


class MetricsNamingRule(Rule):
    id = "REP004"
    name = "metrics-naming"
    summary = (
        "metric families match repro_[a-z0-9_]+, counters end _total, "
        "and no family is registered in two metrics modules"
    )
    scope = ("*metrics.py",)

    def __init__(self) -> None:
        self.declared: Dict[str, List[Tuple[str, int, Optional[str]]]] = {}

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            family: Optional[Tuple[str, Optional[str], ast.AST]] = None
            if isinstance(node, ast.Call):
                family = self._family_from_call(node)
            elif isinstance(node, ast.Tuple):
                family = self._family_from_tuple(node)
            elif isinstance(node, ast.Assign):
                family = self._family_from_assign(node)
            if family is None:
                continue
            name, kind, at = family
            self._record(ctx, name, kind, at, findings)
        return findings

    @staticmethod
    def _family_from_call(node: ast.Call):
        tail = call_name(node).rsplit(".", 1)[-1]
        if tail in _METRIC_CTORS and node.args:
            name = string_value(node.args[0])
            if name is not None:
                return name, _METRIC_CTORS[tail], node
        if tail == "render_family" and len(node.args) >= 2:
            name = string_value(node.args[0])
            kind = string_value(node.args[1])
            if name is not None and kind is not None:
                return name, kind, node
        return None

    @staticmethod
    def _family_from_tuple(node: ast.Tuple):
        names = []
        kinds = []
        for element in node.elts:
            value = string_value(element)
            if value is None:
                continue
            if value.startswith("repro_"):
                names.append(value)
            elif value in _METRIC_KINDS:
                kinds.append(value)
        if len(names) == 1 and len(kinds) == 1:
            return names[0], kinds[0], node
        return None

    @staticmethod
    def _family_from_assign(node: ast.Assign):
        value = string_value(node.value)
        if value is None or not value.startswith("repro_"):
            return None
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            return value, None, node
        return None

    def _record(
        self,
        ctx: FileContext,
        name: str,
        kind: Optional[str],
        node: ast.AST,
        findings: List[Finding],
    ) -> None:
        if not _FAMILY_STRICT_RE.match(name):
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"metric family {name!r} does not match "
                    "repro_[a-z0-9_]+",
                )
            )
        if kind == "counter" and not name.endswith("_total"):
            findings.append(
                self.finding(
                    ctx, node, f"counter family {name!r} must end in _total"
                )
            )
        if kind in ("gauge", "histogram") and name.endswith("_total"):
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"{kind} family {name!r} must not end in _total "
                    "(reserved for counters)",
                )
            )
        self.declared.setdefault(name, []).append(
            (ctx.posix, getattr(node, "lineno", 1), kind)
        )

    def finalize(self, project: LintProject) -> List[Finding]:
        findings: List[Finding] = []
        for name, sites in sorted(self.declared.items()):
            files = {path for path, _, _ in sites}
            if len(files) > 1:
                where = ", ".join(sorted(files))
                for path, line, _ in sites[1:]:
                    findings.append(
                        Finding(
                            self.id,
                            path,
                            line,
                            0,
                            f"metric family {name!r} is registered in "
                            f"multiple modules ({where}); one family, one "
                            "owner",
                        )
                    )
        return findings


# --------------------------------------------------------------------- #
# REP005 — JSON-native results
# --------------------------------------------------------------------- #
class JsonNativeRule(Rule):
    id = "REP005"
    name = "json-native"
    summary = (
        "no json.dumps(..., default=...) escape hatches; result payloads "
        "must be coerced through json_native before serialization"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = call_name(node).rsplit(".", 1)[-1]
            if tail not in ("dumps", "dump"):
                continue
            if keyword_arg(node, "default") is None:
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"json.{tail}(..., default=...) hides non-JSON-native "
                    "payloads; coerce through json_native() instead",
                )
            )
        return findings


# --------------------------------------------------------------------- #
# REP006 — engine determinism
# --------------------------------------------------------------------- #
_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
    }
)
_NP_RNG_FUNCS = frozenset(
    {"rand", "randn", "randint", "choice", "shuffle", "permutation", "random"}
)
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)


class EngineDeterminismRule(Rule):
    id = "REP006"
    name = "determinism"
    summary = (
        "engine modules must not iterate unordered sets into output, "
        "call unseeded module-level RNGs, or order by wall-clock time"
    )
    scope = ("*/core/*.py", "*/fd/*.py", "*/itemsets/*.py", "*/cfd/*.py")

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                self._check_iter(ctx, node.iter, findings)
            elif isinstance(node, ast.comprehension):
                self._check_iter(ctx, node.iter, findings)
            elif isinstance(node, ast.Call):
                self._check_call(ctx, node, findings)
        return findings

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            return name in ("set", "frozenset")
        return False

    def _check_iter(
        self, ctx: FileContext, iter_node: ast.AST, findings: List[Finding]
    ) -> None:
        if self._is_set_expr(iter_node):
            findings.append(
                self.finding(
                    ctx,
                    iter_node,
                    "iteration over an unordered set expression in an "
                    "engine module; wrap it in sorted(...) so output order "
                    "is deterministic",
                )
            )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, findings: List[Finding]
    ) -> None:
        name = call_name(node)
        if name in ("list", "tuple") and len(node.args) == 1 and self._is_set_expr(
            node.args[0]
        ):
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"{name}() over an unordered set expression in an "
                    "engine module; use sorted(...) instead",
                )
            )
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _RNG_FUNCS:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"unseeded module-level RNG call '{name}' in an engine "
                    "module; use a seeded random.Random(seed) instance",
                )
            )
            return
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in _NP_RNG_FUNCS
        ):
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"unseeded global numpy RNG call '{name}' in an engine "
                    "module; use np.random.default_rng(seed)",
                )
            )
            return
        if name in _WALL_CLOCK:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"wall-clock call '{name}' in an engine module; engines "
                    "must not order or key anything by the clock "
                    "(time.perf_counter for duration stats is fine)",
                )
            )


# --------------------------------------------------------------------- #
# REP007 — broad-except hygiene
# --------------------------------------------------------------------- #
_NOQA_RE = re.compile(r"#\s*noqa:\s*BLE001\s*-\s*\S")


class BroadExceptRule(Rule):
    id = "REP007"
    name = "broad-except"
    summary = (
        "every 'except Exception' (and bare 'except:') must carry the "
        "'# noqa: BLE001 - <reason>' justification on the same line"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "bare 'except:' — catch a narrow exception type "
                        "(a bare except even swallows KeyboardInterrupt)",
                    )
                )
                continue
            if not self._is_broad(node.type):
                continue
            if _NOQA_RE.search(ctx.line_text(node.lineno)):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "'except Exception' without the required "
                    "'# noqa: BLE001 - <reason>' justification; narrow the "
                    "exception type or justify the breadth",
                )
            )
        return findings

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Name) and type_node.id == "Exception":
            return True
        if isinstance(type_node, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id == "Exception"
                for el in type_node.elts
            )
        return False


# --------------------------------------------------------------------- #
# REP008 — store dtype allowlist
# --------------------------------------------------------------------- #
class StoreDtypeRule(Rule):
    id = "REP008"
    name = "store-dtype"
    summary = (
        "arrays serialized into CacheStore entries must use allowlisted "
        "dtypes (the store rejects anything else on load)"
    )

    def __init__(self) -> None:
        self.allowlist = _store_dtype_allowlist()

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._serializes_to_store(node):
                continue
            self._check_dtypes(ctx, node, findings)
        return findings

    @staticmethod
    def _serializes_to_store(func: ast.AST) -> bool:
        if func.name.startswith("pack_"):
            return True
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not name.endswith(".put"):
                continue
            base = name.rsplit(".", 2)[-2].lower()
            if "store" in base:
                return True
        return False

    @staticmethod
    def _dtype_literal(node: ast.AST) -> Optional[str]:
        value = string_value(node)
        if value is not None:
            return value
        if isinstance(node, ast.Attribute):
            base = dotted_name(node.value)
            if base in ("np", "numpy"):
                return node.attr
        return None

    def _check_dtypes(
        self, ctx: FileContext, func: ast.AST, findings: List[Finding]
    ) -> None:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            candidates: List[ast.AST] = []
            dtype_kw = keyword_arg(node, "dtype")
            if dtype_kw is not None:
                candidates.append(dtype_kw)
            if (
                call_name(node).rsplit(".", 1)[-1] == "astype"
                and node.args
            ):
                candidates.append(node.args[0])
            for candidate in candidates:
                literal = self._dtype_literal(candidate)
                if literal is None or literal in self.allowlist:
                    continue
                allowed = ", ".join(sorted(self.allowlist))
                findings.append(
                    self.finding(
                        ctx,
                        candidate,
                        f"dtype {literal!r} in a store-serialization path "
                        f"is outside the CacheStore allowlist ({allowed}); "
                        "the store would reject the entry on load",
                    )
                )


# --------------------------------------------------------------------- #
# REP009 — span names
# --------------------------------------------------------------------- #
_SPAN_NAME_RE = re.compile(r"^repro\.[a-z0-9_.]+$")
_SPAN_STARTERS = frozenset({"start_span", "start_trace"})
#: DESIGN.md span-taxonomy rows: ``| `repro.layer.op` | ... |``.  Span
#: names carry the ``repro.`` prefix, so fault-point rows never match.
_SPAN_ROW_RE = re.compile(r"^\|\s*`(repro\.[a-z0-9_.]+)`\s*\|")


class SpanNamesRule(Rule):
    id = "REP009"
    name = "span-names"
    summary = (
        "start_span/start_trace sites must pass a SPAN_* constant from the "
        "repro.obs.names registry (never an inline literal); SPAN_* "
        "constants match repro.[a-z0-9_.]+; DESIGN.md's span-taxonomy "
        "table must list exactly the registered set"
    )

    def __init__(self) -> None:
        self.names = frozenset(_registry_span_names())

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_start(ctx, node, findings)
            elif isinstance(node, ast.Assign):
                self._check_constant(ctx, node, findings)
        return findings

    def _check_start(
        self, ctx: FileContext, node: ast.Call, findings: List[Finding]
    ) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in _SPAN_STARTERS:
            return
        if not node.args:
            return
        literal = string_value(node.args[0])
        if literal is None:
            return  # a SPAN_* constant (or dynamic passthrough) — fine
        if literal in self.names:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"span name {literal!r} passed as an inline literal; "
                    "import the SPAN_* constant from repro.obs.names so the "
                    "registry stays the single source of truth",
                )
            )
        else:
            expected = ", ".join(sorted(self.names))
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"span name {literal!r} is not in the canonical "
                    f"registry ({expected}); add it to repro.obs.names "
                    "and use the constant",
                )
            )

    def _check_constant(
        self, ctx: FileContext, node: ast.Assign, findings: List[Finding]
    ) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        target = node.targets[0].id
        if not target.startswith("SPAN_"):
            return
        value = string_value(node.value)
        if value is None:
            return  # SPAN_NAMES tuple (or similar aggregate) — not a name
        if not _SPAN_NAME_RE.match(value):
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"span constant {target} = {value!r} does not match "
                    "repro.[a-z0-9_.]+ (layer-dotted lowercase)",
                )
            )

    def finalize(self, project: LintProject) -> List[Finding]:
        design = FaultPointNamesRule._find_design(project)
        if design is None:
            return []
        try:
            text = design.read_text(encoding="utf-8")
        except OSError:
            return []
        documented: Dict[str, int] = {}
        table_line = 0
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SPAN_ROW_RE.match(line)
            if match:
                documented.setdefault(match.group(1), lineno)
                table_line = table_line or lineno
        if not documented:
            return []  # no span-taxonomy table in this DESIGN.md
        findings: List[Finding] = []
        for name in sorted(self.names - set(documented)):
            findings.append(
                Finding(
                    self.id,
                    design.as_posix(),
                    table_line or 1,
                    0,
                    f"registered span name {name!r} is missing from the "
                    "DESIGN.md span-taxonomy table",
                )
            )
        for name, lineno in sorted(documented.items()):
            if name not in self.names:
                findings.append(
                    Finding(
                        self.id,
                        design.as_posix(),
                        lineno,
                        0,
                        f"DESIGN.md documents span name {name!r} which is "
                        "not in the repro.obs.names registry",
                    )
                )
        return findings


RULE_CLASSES = (
    LockOrderRule,
    NoBlockingInAsyncRule,
    FaultPointNamesRule,
    MetricsNamingRule,
    JsonNativeRule,
    EngineDeterminismRule,
    BroadExceptRule,
    StoreDtypeRule,
    SpanNamesRule,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every REP rule (one lint run's worth of state)."""
    return [rule_class() for rule_class in RULE_CLASSES]
