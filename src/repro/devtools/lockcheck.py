"""Runtime lock-order and event-loop checkers (``repro.devtools.lockcheck``).

The serving stack's concurrency correctness rests on a page of prose
invariants in DESIGN.md — the strict **service → pool → session** lock
order, *no blocking store I/O under any ranked lock*, and *never block the
asyncio accept loop*.  This module turns those sentences into assertions
that run inside the real code paths when armed:

* :func:`ranked_lock` — the lock factory the serving classes use.  Unarmed
  it returns a plain ``threading.Lock``/``RLock`` (zero overhead — the
  armed check happens once, at lock *creation*).  Armed, it returns a
  :class:`_RankedLock` that keeps a thread-local stack of held ranked locks
  and raises :class:`LockOrderError` the moment an acquisition inverts the
  rank order (pool → service, session → pool, …) or would self-deadlock a
  non-reentrant lock.
* :func:`check_io_unlocked` — the blocking-I/O guard.  Store read/write
  entry points call it; armed, it raises :class:`BlockingUnderLockError`
  if the calling thread holds *any* ranked lock, enforcing DESIGN.md's
  "store I/O never runs under the pool lock" (and its session-lock
  sibling) at runtime.
* :class:`EventLoopWatchdog` / :func:`maybe_watch_loop` — a heartbeat
  thread that measures how long ``call_soon_threadsafe`` callbacks wait on
  an asyncio loop.  A callback delayed past the threshold means something
  blocked the loop (the exact failure REP002 hunts statically); stalls are
  counted, the worst delay kept, and a warning printed to stderr.

Arming: export ``REPRO_LOCKCHECK=1`` (the CI concurrency and chaos steps
do), or call :func:`arm` / :func:`disarm` from a test.  Arming affects
locks created *after* the flag flips — services built under ``arm()`` are
checked, services built before it are not.

This module is intentionally dependency-free and imports nothing from
``repro`` so the serving layer can depend on it without cycles.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ENV_LOCKCHECK",
    "RANK_SERVICE",
    "RANK_POOL",
    "RANK_SESSION",
    "RANK_PROVIDER",
    "LockOrderError",
    "BlockingUnderLockError",
    "arm",
    "disarm",
    "armed",
    "ranked_lock",
    "held_ranked_locks",
    "check_io_unlocked",
    "EventLoopWatchdog",
    "maybe_watch_loop",
]

#: Environment variable that arms the runtime checkers (any non-empty value
#: other than ``0``).  Exported by the CI concurrency and chaos test steps.
ENV_LOCKCHECK = "REPRO_LOCKCHECK"

#: The canonical lock ranks, strictly increasing along the permitted
#: acquisition order service → pool → session (→ provider cache locks).
#: A thread may only acquire a lock whose rank is strictly greater than
#: every ranked lock it already holds.
RANK_SERVICE = 10
RANK_POOL = 20
RANK_SESSION = 30
RANK_PROVIDER = 40

#: Human names for diagnostics, keyed by rank.
RANK_NAMES: Dict[int, str] = {
    RANK_SERVICE: "service",
    RANK_POOL: "pool",
    RANK_SESSION: "session",
    RANK_PROVIDER: "provider",
}


class LockOrderError(AssertionError):
    """A ranked lock was acquired against the service→pool→session order."""


class BlockingUnderLockError(AssertionError):
    """Blocking I/O was attempted while a ranked lock was held."""


# --------------------------------------------------------------------- #
# arming
# --------------------------------------------------------------------- #
_armed_override: Optional[bool] = None


def armed() -> bool:
    """Whether the runtime checkers are armed (env or explicit override)."""
    if _armed_override is not None:
        return _armed_override
    raw = os.environ.get(ENV_LOCKCHECK, "").strip()
    return bool(raw) and raw != "0"


def arm() -> None:
    """Force-arm the checkers for locks created from now on (tests)."""
    global _armed_override
    _armed_override = True


def disarm() -> None:
    """Force-disarm the checkers regardless of the environment (tests)."""
    global _armed_override
    _armed_override = False


def reset_arming() -> None:
    """Return arming control to the environment variable."""
    global _armed_override
    _armed_override = None


# --------------------------------------------------------------------- #
# ranked locks
# --------------------------------------------------------------------- #
_tls = threading.local()


def _held_stack() -> List["_RankedLock"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def held_ranked_locks() -> Tuple[Tuple[int, str], ...]:
    """``(rank, name)`` of every ranked lock the current thread holds."""
    return tuple((lock.rank, lock.name) for lock in _held_stack())


class _RankedLock:
    """A lock wrapper asserting rank order on every acquisition.

    Re-entrant acquisition of the *same* lock object is permitted only when
    the underlying lock is an ``RLock``; acquiring a second lock of equal
    or lower rank raises :class:`LockOrderError` before touching the real
    lock, so the would-be deadlock surfaces as a stack trace instead of a
    hang.
    """

    __slots__ = ("rank", "name", "_lock", "_reentrant")

    def __init__(self, rank: int, name: str, *, reentrant: bool):
        self.rank = rank
        self.name = name
        self._reentrant = reentrant
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def _check_order(self) -> None:
        stack = _held_stack()
        if not stack:
            return
        if stack[-1] is self or any(held is self for held in stack):
            if self._reentrant:
                return
            raise LockOrderError(
                f"non-reentrant {self.name!r} lock (rank {self.rank}) "
                "re-acquired by the thread already holding it — this would "
                "deadlock"
            )
        worst = max(stack, key=lambda held: held.rank)
        if worst.rank >= self.rank:
            order = " -> ".join(
                f"{held.name}({held.rank})" for held in stack
            )
            raise LockOrderError(
                f"lock-order inversion: acquiring {self.name!r} "
                f"(rank {self.rank}) while holding [{order}]; the permitted "
                "order is service -> pool -> session (strictly increasing "
                "ranks)"
            )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check_order()
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _held_stack().append(self)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


def ranked_lock(rank: int, name: Optional[str] = None, *, reentrant: bool = False):
    """The lock factory the serving classes create their locks through.

    Unarmed (the production default) this is exactly
    ``threading.RLock()``/``threading.Lock()``; armed it returns a
    rank-asserting wrapper.  ``rank`` should be one of :data:`RANK_SERVICE`,
    :data:`RANK_POOL`, :data:`RANK_SESSION`, :data:`RANK_PROVIDER`.
    """
    if not armed():
        return threading.RLock() if reentrant else threading.Lock()
    label = name if name is not None else RANK_NAMES.get(rank, str(rank))
    return _RankedLock(rank, label, reentrant=reentrant)


def check_io_unlocked(point: str) -> None:
    """Assert the calling thread holds no ranked lock (blocking-I/O guard).

    Store read/write entry points call this; unarmed it is one module-global
    test.  Armed, a held ranked lock raises :class:`BlockingUnderLockError`
    naming the I/O point and the held locks — the runtime form of
    DESIGN.md's "store I/O never runs under the pool lock".
    """
    if not armed():
        return
    stack = _held_stack()
    if stack:
        held = ", ".join(f"{lock.name}({lock.rank})" for lock in stack)
        raise BlockingUnderLockError(
            f"blocking I/O at {point!r} while holding ranked locks [{held}]; "
            "store I/O must run outside the service/pool/session locks"
        )


# --------------------------------------------------------------------- #
# asyncio event-loop watchdog
# --------------------------------------------------------------------- #
class EventLoopWatchdog:
    """Detects callbacks blocking an asyncio event loop.

    A daemon thread schedules a heartbeat onto the loop with
    ``call_soon_threadsafe`` every ``interval`` seconds and measures how
    long the loop takes to run it.  A healthy loop answers in microseconds;
    a delay past ``threshold`` means a callback blocked the loop (sync
    store I/O, an un-executor'd engine run — exactly what REP002 flags
    statically).  Stalls are counted and the worst observed delay kept;
    each stall prints one warning line to stderr.
    """

    def __init__(
        self,
        loop,
        name: str = "loop",
        *,
        threshold: float = 0.5,
        interval: float = 0.1,
    ):
        self._loop = loop
        self.name = name
        self.threshold = threshold
        self.interval = interval
        self.stalls = 0
        self.worst_delay = 0.0
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-loop-watchdog-{name}", daemon=True
        )

    def start(self) -> "EventLoopWatchdog":
        self._thread.start()
        return self

    def _run(self) -> None:
        import sys

        while not self._stop_event.wait(self.interval):
            beat = threading.Event()
            started = time.perf_counter()
            try:
                self._loop.call_soon_threadsafe(beat.set)
            except RuntimeError:
                return  # the loop closed; nothing left to watch
            # Wait past the threshold to see the real delay, but never hang
            # the watchdog thread on a dead loop: give up after 10x.
            if beat.wait(self.threshold):
                continue
            beat.wait(self.threshold * 9)
            delay = time.perf_counter() - started
            self.stalls += 1
            self.worst_delay = max(self.worst_delay, delay)
            print(
                f"repro.devtools.lockcheck: event loop {self.name!r} stalled "
                f"{delay:.3f}s (threshold {self.threshold:.3f}s) — a callback "
                "is blocking the loop",
                file=sys.stderr,
                flush=True,
            )

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def report(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "stalls": self.stalls,
            "worst_delay_seconds": self.worst_delay,
            "threshold_seconds": self.threshold,
        }


def maybe_watch_loop(
    loop, name: str, *, threshold: float = 0.5
) -> Optional[EventLoopWatchdog]:
    """Start a watchdog over ``loop`` when the checkers are armed.

    The HTTP server and fleet router call this at loop startup; unarmed it
    returns ``None`` and costs nothing.
    """
    if not armed():
        return None
    return EventLoopWatchdog(loop, name, threshold=threshold).start()
