"""Developer tooling: the ``repro-lint`` invariant linter and the runtime
lock-order / event-loop checkers (see DESIGN.md "Invariants as checks").

Static side — :mod:`repro.devtools.lint` (framework),
:mod:`repro.devtools.rules` (REP001–REP008), :mod:`repro.devtools.cli`
(``repro-lint``).  Runtime side — :mod:`repro.devtools.lockcheck`, armed
via ``REPRO_LOCKCHECK=1``.

This package intentionally keeps its top-level import graph empty of the
serving stack: ``lockcheck`` imports nothing from ``repro`` so the serving
layer can import it without cycles, and the linter resolves the fault-point
registry and dtype allowlist lazily at run time.
"""

from repro.devtools.lockcheck import (
    RANK_POOL,
    RANK_PROVIDER,
    RANK_SERVICE,
    RANK_SESSION,
    BlockingUnderLockError,
    LockOrderError,
    check_io_unlocked,
    maybe_watch_loop,
    ranked_lock,
)

__all__ = [
    "RANK_SERVICE",
    "RANK_POOL",
    "RANK_SESSION",
    "RANK_PROVIDER",
    "LockOrderError",
    "BlockingUnderLockError",
    "ranked_lock",
    "check_io_unlocked",
    "maybe_watch_loop",
]
