"""The ``repro-lint`` static-analysis framework (``repro.devtools.lint``).

A dependency-free linter over Python's stdlib :mod:`ast` that encodes this
project's *prose* invariants — the DESIGN.md locking discipline, the
canonical fault-point registry, Prometheus naming, JSON-native results,
engine determinism — as named, testable rules (REP001–REP009, implemented
in :mod:`repro.devtools.rules`).

The framework is deliberately small:

* :class:`Finding` — one violation: rule id, file, line, column, message.
* :class:`Rule` — a rule has an ``id``/``name``/``summary``, a path scope
  (``fnmatch`` patterns over the posix path; empty = every file), a
  per-file :meth:`Rule.check`, and an optional cross-file
  :meth:`Rule.finalize` that runs once after every file was visited
  (duplicate-metric detection, doc-consistency checks).
* :func:`run_lint` — collect ``*.py`` under the given paths, parse each
  once, fan the trees out to the selected rules, then run finalizers.

Scoping by *path pattern* rather than by import means the same rules fire
on the test fixtures under ``tests/devtools/fixtures`` — the bad snippets
mirror the directory shapes the scopes match (``.../serve/http/...``,
``.../core/...``), so every rule has an executable counterexample.

Unparseable files are reported under the pseudo-rule ``REP000`` rather
than crashing the run: a syntax error in the tree being linted is itself
a finding.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintProject",
    "run_lint",
    "iter_python_files",
]

#: Pseudo rule id for files the parser rejects.
PARSE_ERROR_RULE = "REP000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule sees for one file: path, source lines, parsed tree."""

    path: Path
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class LintProject:
    """Cross-file state shared with rule finalizers."""

    root: Path
    files: List[FileContext] = field(default_factory=list)


class Rule:
    """Base class for a named invariant check.

    Subclasses set ``id`` / ``name`` / ``summary`` and override
    :meth:`check`; rules needing cross-file state stash it on ``self``
    during :meth:`check` and emit from :meth:`finalize`.  One rule
    instance sees one :func:`run_lint` invocation, so instance state is
    per-run.
    """

    id: str = "REP999"
    name: str = "unnamed"
    summary: str = ""
    #: ``fnmatch`` patterns over the posix file path; empty = all files.
    scope: Sequence[str] = ()

    def applies(self, posix_path: str) -> bool:
        if not self.scope:
            return True
        return any(fnmatch.fnmatch(posix_path, pattern) for pattern in self.scope)

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError

    def finalize(self, project: LintProject) -> List[Finding]:
        return []

    # -- helpers ---------------------------------------------------------
    def finding(
        self, ctx: FileContext, node: Optional[ast.AST], message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(self.id, ctx.posix, line, col, message)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(
                p for p in sorted(path.rglob("*.py")) if p.is_file()
            )
        elif path.suffix == ".py" and path.is_file():
            collected.append(path)
    # De-duplicate while preserving the sorted-per-argument order.
    seen = {}
    for path in collected:
        seen.setdefault(path.resolve().as_posix(), path)
    return list(seen.values())


def run_lint(
    paths: Sequence[Path],
    rules: Iterable[Rule],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Sequence[str] = (),
) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` with the given rules.

    ``select`` keeps only the named rule ids (``None`` = all); ``ignore``
    drops ids after selection.  Findings are ordered by file, then line.
    """
    chosen: List[Rule] = []
    for rule in rules:
        if select is not None and rule.id not in select:
            continue
        if rule.id in ignore:
            continue
        chosen.append(rule)

    files = iter_python_files([Path(p) for p in paths])
    root = _common_root(files) if files else Path(".")
    project = LintProject(root=root)
    findings: List[Finding] = []

    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            findings.append(
                Finding(
                    PARSE_ERROR_RULE,
                    path.as_posix(),
                    int(line),
                    0,
                    f"file could not be parsed: {exc}",
                )
            )
            continue
        ctx = FileContext(path=path, source=source, tree=tree)
        project.files.append(ctx)
        for rule in chosen:
            if rule.applies(ctx.posix):
                findings.extend(rule.check(ctx))

    for rule in chosen:
        findings.extend(rule.finalize(project))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _common_root(files: Sequence[Path]) -> Path:
    resolved = [path.resolve() for path in files]
    if len(resolved) == 1:
        return resolved[0].parent
    import os

    return Path(os.path.commonpath([str(p) for p in resolved]))


# -- shared AST utilities (used by the rules module) ---------------------- #
def call_name(node: ast.Call) -> str:
    """The dotted name of a call target, best effort (``''`` if dynamic)."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for nested attribute access on names; ``''`` otherwise."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif parts:
        # Dynamic base (call result, subscript): keep the attribute tail so
        # callers can still match on the method name.
        parts.append("")
    else:
        return ""
    return ".".join(reversed(parts))


def string_value(node: ast.AST) -> Optional[str]:
    """The value of a string-constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def keyword_arg(node: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def enclosing_functions(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Map every node to its nearest enclosing function def (or ``None``)."""
    owner: Dict[ast.AST, ast.AST] = {}

    def walk(node: ast.AST, current: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            owner[child] = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(child, child)
            else:
                walk(child, current)

    walk(tree, None)
    return owner
