"""``python -m repro.devtools`` → the ``repro-lint`` CLI."""

from repro.devtools.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
