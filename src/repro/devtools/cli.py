"""``repro-lint`` — run the REP invariant rules over a source tree.

Usage::

    repro-lint src/                  # lint everything, exit 1 on findings
    repro-lint --list-rules          # show the rule table
    repro-lint --select REP004 src/  # only metrics naming
    repro-lint --ignore REP006 src/  # everything but determinism

The exit code is the contract CI relies on: ``0`` clean, ``1`` findings,
``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.lint import run_lint
from repro.devtools.rules import all_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for this repo's DESIGN.md invariants: lock "
            "order, async hygiene, fault-point names, metrics naming, "
            "JSON-native results, engine determinism, broad-except "
            "justifications, and store dtypes (rules REP001-REP009)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if it exists, else .)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, name, summary, scope) and exit",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run the given rule id (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        default=[],
        help="skip the given rule id (repeatable)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line; print findings only",
    )
    return parser


def _list_rules() -> str:
    lines = ["repro-lint rules:", ""]
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        lines.append(f"  {rule.id}  {rule.name}")
        lines.append(f"          {rule.summary}")
        lines.append(f"          scope: {scope}")
    lines.append("")
    lines.append(
        "Runtime companions (repro.devtools.lockcheck): set REPRO_LOCKCHECK=1 "
        "to arm the lock-order stack, the blocking-I/O-under-lock guard, and "
        "the event-loop watchdog."
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths: List[Path] = [Path(p) for p in args.paths]
    if not paths:
        default = Path("src")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
        return 2

    known = {rule.id for rule in all_rules()}
    for rule_id in (args.select or []) + list(args.ignore):
        if rule_id not in known:
            print(f"repro-lint: unknown rule id: {rule_id}", file=sys.stderr)
            return 2

    started = time.perf_counter()
    findings = run_lint(
        paths, all_rules(), select=args.select, ignore=args.ignore
    )
    elapsed = time.perf_counter() - started

    for finding in findings:
        print(finding.render())
    if not args.quiet:
        label = "finding" if len(findings) == 1 else "findings"
        print(
            f"repro-lint: {len(findings)} {label} in "
            f"{elapsed:.2f}s",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
