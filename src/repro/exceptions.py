"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause without
swallowing unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """Raised when a schema is malformed or an unknown attribute is used."""


class RelationError(ReproError):
    """Raised when relation construction or access is invalid."""


class PatternError(ReproError):
    """Raised when a pattern tuple is inconsistent with its attributes."""


class DependencyError(ReproError):
    """Raised when a CFD or FD object is structurally invalid."""


class DiscoveryError(ReproError):
    """Raised when a discovery algorithm is invoked with invalid parameters."""


class UnknownRelationError(DiscoveryError):
    """Raised when a relation reference names nothing registered.

    A distinct type so transport layers can map "you asked for a dataset
    that is not here" (HTTP 404) apart from every other discovery failure
    (HTTP 400) without matching on message text.
    """


class DataGenerationError(ReproError):
    """Raised when a synthetic data generator receives invalid parameters."""


class CacheStoreError(ReproError):
    """Raised when a persistent cache-store entry cannot be read or written."""


class RepairError(ReproError):
    """Raised when the repair engine cannot produce a consistent relation."""
