"""Command-line interface: discover CFDs in a CSV file.

Installed as the ``repro-discover`` console script::

    repro-discover data.csv --support 10 --algorithm fastcfd
    repro-discover data.csv --support 10 --constant-only --tableau
    repro-discover data.csv --support 10 --json
    repro-discover data.csv --support 10 --output rules.txt
    repro-discover data.csv --batch requests.json --workers 4

The CSV's first row is taken as the header unless ``--no-header`` is given
(in which case attributes are named ``A0, A1, …``).  The discovered canonical
cover is printed one rule per line (optionally grouped into pattern tableaux,
or as a machine-readable JSON document with ``--json``) together with a short
summary on stderr.

The command is a thin shell over the unified discovery API: the flags are
packed into one :class:`repro.api.DiscoveryRequest` and executed through a
:class:`repro.api.Profiler`, so ``--constant-only`` with the default
``auto`` algorithm routes to a constant-only engine (CFDMiner) *before* any
variable CFDs are mined.

``--batch requests.json`` switches to the serving layer: the file holds a
JSON array (or a ``{"requests": [...]}`` document) of request objects whose
fields override the command-line flags — ``csv``, ``support``, ``algorithm``,
``max_lhs``, ``limit_rows``, ``constant_only``, ``variable_only``,
``rank_by``, ``options`` — and the whole batch is executed concurrently
through a :class:`repro.serve.DiscoveryService` (pooled sessions, identical
in-flight requests deduplicated).  The output is one JSON document with the
per-request results and the service/pool counters; a malformed or failing
entry becomes an ``{"error": ...}`` record in place while the rest of the
batch completes, and the exit code is non-zero only when every request
failed.

``--cache-dir DIR`` attaches a persistent :class:`repro.serve.CacheStore`:
the session warm-starts from structures a previous invocation (or another
worker) dumped, and writes its own warmed caches back after the run, so a
repeated discovery is served from disk instead of recomputed.

``--cache-gc MAX_BYTES`` (with ``--cache-dir``) is a maintenance mode: it
shrinks the store to at most ``MAX_BYTES`` using the pool's cost-aware
eviction score — entries with the lowest recorded build cost go first,
oldest files break ties — prints a summary on stderr and exits without
discovering anything (no CSV argument needed).

``--stats`` (with ``--batch``) prints the service's latency aggregates and
pool/store counters on stderr after the batch — the terminal twin of the
HTTP server's ``/metrics``.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import RANKING_KEYS, REGISTRY, DiscoveryRequest, Profiler
from repro.exceptions import DiscoveryError, ReproError
from repro.relational.io import read_csv
from repro.relational.relation import Relation


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-discover`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-discover",
        description="Discover minimal, k-frequent conditional functional "
        "dependencies (CFDs) in a CSV file.",
    )
    parser.add_argument(
        "csv", type=Path, nargs="?", default=None,
        help="path of the CSV file to profile (not needed with "
        "--cache-gc/--cache-fsck)",
    )
    parser.add_argument(
        "--support", "-k", type=int, default=1,
        help="support threshold k (default: 1)",
    )
    parser.add_argument(
        "--algorithm", "-a", choices=REGISTRY.choices(), default="auto",
        help="discovery algorithm (default: auto — the paper's guidance; "
        "wide relations beyond 62 attributes dispatch to the random-walk "
        "dfd engine, whose --json stats report nodes visited, partitions "
        "computed and walk restarts)",
    )
    parser.add_argument(
        "--max-lhs", type=int, default=None,
        help="maximum number of LHS attributes (default: unbounded)",
    )
    parser.add_argument(
        "--limit-rows", type=int, default=None,
        help="read at most this many data rows from the CSV",
    )
    parser.add_argument(
        "--no-header", action="store_true",
        help="the CSV has no header row; attributes are named A0, A1, ...",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV field delimiter (default: ',')"
    )
    parser.add_argument(
        "--constant-only", action="store_true",
        help="report only constant CFDs",
    )
    parser.add_argument(
        "--variable-only", action="store_true",
        help="report only variable CFDs",
    )
    parser.add_argument(
        "--tableau", action="store_true",
        help="group the rules into one pattern tableau per embedded FD",
    )
    parser.add_argument(
        "--rank-by", choices=list(RANKING_KEYS),
        default=None, help="rank the reported rules by an interest measure",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit rules and run statistics as machine-readable JSON",
    )
    parser.add_argument(
        "--batch", type=Path, default=None, metavar="REQUESTS_JSON",
        help="serve a JSON file of request objects concurrently through the "
        "session pool; entry fields override the command-line flags",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker threads for --batch (default: 4)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent cache store: warm-start from DIR before discovery "
        "and write the warmed session caches back afterwards, so repeated "
        "invocations (and other workers) skip recomputation",
    )
    parser.add_argument(
        "--cache-gc", type=int, default=None, metavar="MAX_BYTES",
        help="maintenance mode: shrink the --cache-dir store to at most "
        "MAX_BYTES (cost-aware: cheapest-to-rebuild entries evicted first, "
        "oldest files break ties) and exit without discovering",
    )
    parser.add_argument(
        "--cache-fsck", action="store_true",
        help="maintenance mode: deep-verify every entry of the --cache-dir "
        "store (magic, header, checksums), quarantine corrupt files under "
        "<dir>/quarantine/ with .reason sidecars, and exit without "
        "discovering (exit 1 when anything was quarantined)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="with --batch: print the service's latency aggregates and "
        "pool/store counters on stderr after the batch",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=None,
        help="write the rules to this file instead of stdout",
    )
    return parser


def _peek_arity(path: Path, delimiter: str) -> int:
    """Number of fields of the first CSV record (quote-aware)."""
    with path.open(encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        first = next(reader, [])
    return len(first)


def _load_relation(
    args: argparse.Namespace, path: Optional[Path] = None, limit: Optional[int] = None
) -> Relation:
    path = args.csv if path is None else path
    if args.no_header:
        # Peek at the first record to size the schema; csv handles quoted
        # fields that a naive split on the delimiter would miscount.
        arity = _peek_arity(path, args.delimiter)
        names = [f"A{i}" for i in range(arity)]
        return read_csv(
            path,
            has_header=False,
            attribute_names=names,
            delimiter=args.delimiter,
            limit=limit,
        )
    return read_csv(path, delimiter=args.delimiter, limit=limit)


def _open_store(cache_dir: Optional[Path]):
    """The ``--cache-dir`` store, or ``None`` (unset, or unusable — warned)."""
    if cache_dir is None:
        return None
    from repro.serve import CacheStore

    try:
        return CacheStore(cache_dir)
    except ReproError as exc:
        print(f"# cache-store warning: {exc}", file=sys.stderr)
        return None


def _store_io(operation) -> int:
    """Run one store operation; failures warn on stderr and count as 0."""
    from repro.exceptions import CacheStoreError

    try:
        return operation()
    except (CacheStoreError, OSError) as exc:
        print(f"# cache-store warning: {exc}", file=sys.stderr)
        return 0


def _run_cache_gc(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``--cache-gc`` maintenance mode: shrink the store and exit."""
    from repro.exceptions import CacheStoreError
    from repro.serve import CacheStore

    if args.cache_dir is None:
        parser.error("--cache-gc requires --cache-dir")
    if args.cache_gc < 0:
        parser.error("--cache-gc must be at least 0")
    try:
        store = CacheStore(args.cache_dir)
        summary = store.gc(args.cache_gc)
    except (CacheStoreError, OSError) as exc:
        print(f"# cache-gc failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"# cache-gc {args.cache_dir}: removed {summary['removed_entries']} "
        f"entries ({summary['removed_bytes']} bytes), "
        f"{summary['remaining_entries']} entries / "
        f"{summary['remaining_bytes']} bytes remain "
        f"(budget {summary['max_bytes']})",
        file=sys.stderr,
    )
    return 0


def _run_cache_fsck(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``--cache-fsck`` maintenance mode: verify, quarantine, report."""
    from repro.exceptions import CacheStoreError
    from repro.serve import CacheStore

    if args.cache_dir is None:
        parser.error("--cache-fsck requires --cache-dir")
    try:
        store = CacheStore(args.cache_dir)
        report = store.fsck(deep=True)
    except (CacheStoreError, OSError) as exc:
        print(f"# cache-fsck failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"# cache-fsck {args.cache_dir}: {report['checked']} entries checked, "
        f"{report['healthy']} healthy, {report['quarantined']} quarantined",
        file=sys.stderr,
    )
    for problem in report["problems"]:
        print(
            f"# cache-fsck   {problem['path']}: {problem['reason']}",
            file=sys.stderr,
        )
    if report["quarantined"]:
        print(
            f"# cache-fsck quarantined files moved to {report['quarantine_dir']}",
            file=sys.stderr,
        )
    return 1 if report["quarantined"] else 0


def _print_service_stats(stats: Dict) -> None:
    """The ``--batch --stats`` stderr summary (one snapshot, human-sized)."""
    latency = stats["latency"]
    if latency["count"]:
        line = (
            f"# stats: {latency['count']} executed runs, latency "
            f"mean {latency['mean_seconds'] * 1000:.1f}ms / "
            f"min {latency['min_seconds'] * 1000:.1f}ms / "
            f"max {latency['max_seconds'] * 1000:.1f}ms"
        )
    else:
        line = "# stats: no executed runs"
    print(line, file=sys.stderr)
    pool = stats["pool"]
    print(
        f"# stats: pool {pool['sessions']} sessions / "
        f"{pool['estimated_bytes']} bytes (hits {pool['hits']}, "
        f"misses {pool['misses']}, evictions {pool['evictions']}), "
        f"dedup {stats['deduplicated']}, failed {stats['failed']}",
        file=sys.stderr,
    )
    store = stats.get("store")
    if store is not None:
        print(
            f"# stats: store {store['entries']} entries / {store['bytes']} "
            f"bytes (loads {store['loads']}, writes {store['writes']})",
            file=sys.stderr,
        )


#: Batch-entry fields that override the corresponding command-line flags.
_BATCH_FIELDS = (
    "csv",
    "support",
    "algorithm",
    "max_lhs",
    "limit_rows",
    "constant_only",
    "variable_only",
    "rank_by",
    "options",
)


def _batch_entries(path: Path, parser: argparse.ArgumentParser) -> List[Dict]:
    """Parse the ``--batch`` request file (file-level problems abort).

    Per-entry problems (wrong shape, unknown fields, bad parameters, missing
    CSVs) do **not** abort the batch: they surface as ``{"error": ...}``
    records in the output document so one malformed request cannot take down
    the requests submitted alongside it.
    """
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read batch file {path}: {exc}")
    entries = spec.get("requests") if isinstance(spec, dict) else spec
    if not isinstance(entries, list) or not entries:
        parser.error(
            f"batch file {path} must hold a non-empty JSON array of request "
            'objects (or {"requests": [...]})'
        )
    return entries


def _batch_job(
    entry: object,
    args: argparse.Namespace,
    relations: Dict[Path, Relation],
) -> Tuple[Relation, DiscoveryRequest]:
    """Resolve one batch entry to ``(relation, request)`` or raise."""
    if not isinstance(entry, dict):
        raise DiscoveryError(f"batch entry is not a JSON object: {entry!r}")
    unknown = set(entry) - set(_BATCH_FIELDS)
    if unknown:
        raise DiscoveryError(
            f"unknown fields {sorted(unknown)}; allowed: {list(_BATCH_FIELDS)}"
        )
    csv_path = Path(entry.get("csv", args.csv))
    if not csv_path.exists():
        raise DiscoveryError(f"no such file: {csv_path}")
    if csv_path not in relations:
        relations[csv_path] = _load_relation(args, path=csv_path)
    request = DiscoveryRequest(
        min_support=entry.get("support", args.support),
        algorithm=entry.get("algorithm", args.algorithm),
        max_lhs_size=entry.get("max_lhs", args.max_lhs),
        constant_only=entry.get("constant_only", args.constant_only),
        variable_only=entry.get("variable_only", args.variable_only),
        rank_by=entry.get("rank_by", args.rank_by),
        limit_rows=entry.get("limit_rows", args.limit_rows),
        options=entry.get("options", {}),
    )
    return relations[csv_path], request


def _run_batch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Serve every batch entry concurrently through the discovery service.

    Exit code 0 as long as at least one request succeeded; non-zero only when
    *every* request failed.
    """
    from repro.serve import DiscoveryService, SessionPool

    entries = _batch_entries(args.batch, parser)
    store = _open_store(args.cache_dir)
    relations: Dict[Path, Relation] = {}
    results_json: List[Optional[Dict]] = [None] * len(entries)
    jobs: List[Tuple[int, Relation, DiscoveryRequest]] = []
    for index, entry in enumerate(entries):
        try:
            relation, request = _batch_job(entry, args, relations)
        except (ReproError, OSError, TypeError, ValueError) as exc:
            results_json[index] = {"error": str(exc)}
            continue
        jobs.append((index, relation, request))

    started = time.perf_counter()
    pool = SessionPool(store=store)
    with DiscoveryService(pool=pool, max_workers=args.workers) as service:
        futures = [
            (index, service.submit(relation, request))
            for index, relation, request in jobs
        ]
        for index, future in futures:
            try:
                results_json[index] = future.result().to_json_dict()
            except Exception as exc:  # noqa: BLE001 - recorded per request
                results_json[index] = {"error": str(exc)}
        elapsed = time.perf_counter() - started
    # Exiting the context ran shutdown(wait=True): the pool spilled into the
    # store (once — spilling here too would rewrite every bundle twice) and
    # every done-callback has run, so the latency aggregates cover the batch.
    info = service.info()
    stats = service.stats() if args.stats else None

    failed = sum(1 for record in results_json if record and "error" in record)
    document = {
        "requests": len(entries),
        "failed": failed,
        "elapsed_seconds": elapsed,
        "requests_per_second": len(entries) / elapsed if elapsed > 0 else None,
        "service": info,
        "results": results_json,
    }
    text = json.dumps(document, indent=2, allow_nan=False)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    throughput = len(entries) / elapsed if elapsed > 0 else float("inf")
    print(
        f"# batch: {len(entries)} requests ({failed} failed, "
        f"{info['deduplicated']} deduplicated) over {len(relations)} relations "
        f"in {elapsed:.3f}s -> {throughput:.1f} req/s",
        file=sys.stderr,
    )
    if stats is not None:
        _print_service_stats(stats)
    return 1 if failed == len(entries) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-discover`` command; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.constant_only and args.variable_only:
        parser.error("--constant-only and --variable-only are mutually exclusive")
    if args.cache_gc is not None:
        return _run_cache_gc(args, parser)
    if args.cache_fsck:
        return _run_cache_fsck(args, parser)
    if args.csv is None:
        parser.error(
            "a CSV file is required (only --cache-gc/--cache-fsck run "
            "without one)"
        )
    if not args.csv.exists():
        parser.error(f"no such file: {args.csv}")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.batch is not None:
        return _run_batch(args, parser)

    relation = _load_relation(args, limit=args.limit_rows)
    store = _open_store(args.cache_dir)
    try:
        request = DiscoveryRequest(
            min_support=args.support,
            algorithm=args.algorithm,
            max_lhs_size=args.max_lhs,
            constant_only=args.constant_only,
            variable_only=args.variable_only,
            rank_by=args.rank_by,
            tableau=args.tableau,
        )
        profiler = Profiler(relation)
        loaded = 0
        if store is not None:
            loaded = _store_io(lambda: profiler.warm_from(store))
        result = profiler.run(request)
        # A failing store degrades to warnings: the computed rules are
        # always delivered (the store is an accelerator, never a gate).
        stored = 0
        if store is not None:
            stored = _store_io(lambda: profiler.dump_caches(store))
    except DiscoveryError as exc:
        parser.error(str(exc))

    if args.rank_by is None:
        # Deterministic presentation order (ranked output keeps rank order).
        result.cfds = sorted(result.cfds, key=str)
    cfds = result.cfds

    if args.as_json:
        document = result.to_json_dict()
        if args.tableau:
            document["tableaux"] = [str(t) for t in result.tableaux()]
        if store is not None:
            document["cache_store"] = {
                "dir": str(args.cache_dir),
                "entries_loaded": loaded,
                "entries_stored": stored,
            }
        # to_json_dict() is strictly JSON-native: no default= escape hatch.
        text = json.dumps(document, indent=2, allow_nan=False)
        n_reported = len(document["rules"])
        unit = "rules"
    elif args.tableau:
        lines: List[str] = [str(tableau) for tableau in result.tableaux()]
        text = "\n".join(lines)
        n_reported = len(lines)
        unit = "tableaux"
    else:
        lines = [str(cfd) for cfd in cfds]
        text = "\n".join(lines)
        n_reported = len(lines)
        unit = "rules"

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + ("\n" if text else ""), encoding="utf-8")
    else:
        if text:
            print(text)
    print(
        f"# {result.summary()} -> {n_reported} {unit} reported",
        file=sys.stderr,
    )
    if store is not None:
        print(
            f"# cache-store {args.cache_dir}: loaded {loaded} entries, "
            f"stored {stored}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
