"""Command-line interface: discover CFDs in a CSV file.

Installed as the ``repro-discover`` console script::

    repro-discover data.csv --support 10 --algorithm fastcfd
    repro-discover data.csv --support 10 --constant-only --tableau
    repro-discover data.csv --support 10 --json
    repro-discover data.csv --support 10 --output rules.txt
    repro-discover data.csv --batch requests.json --workers 4

The CSV's first row is taken as the header unless ``--no-header`` is given
(in which case attributes are named ``A0, A1, …``).  The discovered canonical
cover is printed one rule per line (optionally grouped into pattern tableaux,
or as a machine-readable JSON document with ``--json``) together with a short
summary on stderr.

The command is a thin shell over the unified discovery API: the flags are
packed into one :class:`repro.api.DiscoveryRequest` and executed through a
:class:`repro.api.Profiler`, so ``--constant-only`` with the default
``auto`` algorithm routes to a constant-only engine (CFDMiner) *before* any
variable CFDs are mined.

``--batch requests.json`` switches to the serving layer: the file holds a
JSON array (or a ``{"requests": [...]}`` document) of request objects whose
fields override the command-line flags — ``csv``, ``support``, ``algorithm``,
``max_lhs``, ``limit_rows``, ``constant_only``, ``variable_only``,
``rank_by``, ``options`` — and the whole batch is executed concurrently
through a :class:`repro.serve.DiscoveryService` (pooled sessions, identical
in-flight requests deduplicated).  The output is one JSON document with the
per-request results and the service/pool counters.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import RANKING_KEYS, REGISTRY, DiscoveryRequest, Profiler
from repro.exceptions import DiscoveryError
from repro.relational.io import read_csv
from repro.relational.relation import Relation


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-discover`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-discover",
        description="Discover minimal, k-frequent conditional functional "
        "dependencies (CFDs) in a CSV file.",
    )
    parser.add_argument("csv", type=Path, help="path of the CSV file to profile")
    parser.add_argument(
        "--support", "-k", type=int, default=1,
        help="support threshold k (default: 1)",
    )
    parser.add_argument(
        "--algorithm", "-a", choices=REGISTRY.choices(), default="auto",
        help="discovery algorithm (default: auto — the paper's guidance)",
    )
    parser.add_argument(
        "--max-lhs", type=int, default=None,
        help="maximum number of LHS attributes (default: unbounded)",
    )
    parser.add_argument(
        "--limit-rows", type=int, default=None,
        help="read at most this many data rows from the CSV",
    )
    parser.add_argument(
        "--no-header", action="store_true",
        help="the CSV has no header row; attributes are named A0, A1, ...",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV field delimiter (default: ',')"
    )
    parser.add_argument(
        "--constant-only", action="store_true",
        help="report only constant CFDs",
    )
    parser.add_argument(
        "--variable-only", action="store_true",
        help="report only variable CFDs",
    )
    parser.add_argument(
        "--tableau", action="store_true",
        help="group the rules into one pattern tableau per embedded FD",
    )
    parser.add_argument(
        "--rank-by", choices=list(RANKING_KEYS),
        default=None, help="rank the reported rules by an interest measure",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit rules and run statistics as machine-readable JSON",
    )
    parser.add_argument(
        "--batch", type=Path, default=None, metavar="REQUESTS_JSON",
        help="serve a JSON file of request objects concurrently through the "
        "session pool; entry fields override the command-line flags",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker threads for --batch (default: 4)",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=None,
        help="write the rules to this file instead of stdout",
    )
    return parser


def _peek_arity(path: Path, delimiter: str) -> int:
    """Number of fields of the first CSV record (quote-aware)."""
    with path.open(encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        first = next(reader, [])
    return len(first)


def _load_relation(
    args: argparse.Namespace, path: Optional[Path] = None, limit: Optional[int] = None
) -> Relation:
    path = args.csv if path is None else path
    if args.no_header:
        # Peek at the first record to size the schema; csv handles quoted
        # fields that a naive split on the delimiter would miscount.
        arity = _peek_arity(path, args.delimiter)
        names = [f"A{i}" for i in range(arity)]
        return read_csv(
            path,
            has_header=False,
            attribute_names=names,
            delimiter=args.delimiter,
            limit=limit,
        )
    return read_csv(path, delimiter=args.delimiter, limit=limit)


#: Batch-entry fields that override the corresponding command-line flags.
_BATCH_FIELDS = (
    "csv",
    "support",
    "algorithm",
    "max_lhs",
    "limit_rows",
    "constant_only",
    "variable_only",
    "rank_by",
    "options",
)


def _batch_entries(path: Path, parser: argparse.ArgumentParser) -> List[Dict]:
    """Parse and validate the ``--batch`` request file."""
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read batch file {path}: {exc}")
    entries = spec.get("requests") if isinstance(spec, dict) else spec
    if not isinstance(entries, list) or not entries:
        parser.error(
            f"batch file {path} must hold a non-empty JSON array of request "
            'objects (or {"requests": [...]})'
        )
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            parser.error(f"batch entry #{index} is not a JSON object: {entry!r}")
        unknown = set(entry) - set(_BATCH_FIELDS)
        if unknown:
            parser.error(
                f"batch entry #{index} has unknown fields {sorted(unknown)}; "
                f"allowed: {list(_BATCH_FIELDS)}"
            )
    return entries


def _run_batch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Serve every batch entry concurrently through the discovery service."""
    from repro.serve import DiscoveryService, SessionPool

    entries = _batch_entries(args.batch, parser)
    relations: Dict[Path, Relation] = {}
    jobs: List[Tuple[Relation, DiscoveryRequest]] = []
    try:
        for entry in entries:
            csv_path = Path(entry.get("csv", args.csv))
            if not csv_path.exists():
                parser.error(f"no such file: {csv_path}")
            if csv_path not in relations:
                relations[csv_path] = _load_relation(args, path=csv_path)
            request = DiscoveryRequest(
                min_support=entry.get("support", args.support),
                algorithm=entry.get("algorithm", args.algorithm),
                max_lhs_size=entry.get("max_lhs", args.max_lhs),
                constant_only=entry.get("constant_only", args.constant_only),
                variable_only=entry.get("variable_only", args.variable_only),
                rank_by=entry.get("rank_by", args.rank_by),
                limit_rows=entry.get("limit_rows", args.limit_rows),
                options=entry.get("options", {}),
            )
            jobs.append((relations[csv_path], request))

        started = time.perf_counter()
        with DiscoveryService(
            pool=SessionPool(), max_workers=args.workers
        ) as service:
            results = service.run_batch(jobs)
            elapsed = time.perf_counter() - started
            info = service.info()
    except DiscoveryError as exc:
        parser.error(str(exc))

    document = {
        "requests": len(jobs),
        "elapsed_seconds": elapsed,
        "requests_per_second": len(jobs) / elapsed if elapsed > 0 else None,
        "service": info,
        "results": [result.to_json_dict() for result in results],
    }
    text = json.dumps(document, indent=2, allow_nan=False)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    throughput = len(jobs) / elapsed if elapsed > 0 else float("inf")
    print(
        f"# batch: {len(jobs)} requests ({info['deduplicated']} deduplicated) "
        f"over {len(relations)} relations in {elapsed:.3f}s "
        f"-> {throughput:.1f} req/s",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-discover`` command; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.constant_only and args.variable_only:
        parser.error("--constant-only and --variable-only are mutually exclusive")
    if not args.csv.exists():
        parser.error(f"no such file: {args.csv}")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.batch is not None:
        return _run_batch(args, parser)

    relation = _load_relation(args, limit=args.limit_rows)
    try:
        request = DiscoveryRequest(
            min_support=args.support,
            algorithm=args.algorithm,
            max_lhs_size=args.max_lhs,
            constant_only=args.constant_only,
            variable_only=args.variable_only,
            rank_by=args.rank_by,
            tableau=args.tableau,
        )
        result = Profiler(relation).run(request)
    except DiscoveryError as exc:
        parser.error(str(exc))

    if args.rank_by is None:
        # Deterministic presentation order (ranked output keeps rank order).
        result.cfds = sorted(result.cfds, key=str)
    cfds = result.cfds

    if args.as_json:
        document = result.to_json_dict()
        if args.tableau:
            document["tableaux"] = [str(t) for t in result.tableaux()]
        # to_json_dict() is strictly JSON-native: no default= escape hatch.
        text = json.dumps(document, indent=2, allow_nan=False)
        n_reported = len(document["rules"])
        unit = "rules"
    elif args.tableau:
        lines: List[str] = [str(tableau) for tableau in result.tableaux()]
        text = "\n".join(lines)
        n_reported = len(lines)
        unit = "tableaux"
    else:
        lines = [str(cfd) for cfd in cfds]
        text = "\n".join(lines)
        n_reported = len(lines)
        unit = "rules"

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + ("\n" if text else ""), encoding="utf-8")
    else:
        if text:
            print(text)
    print(
        f"# {result.summary()} -> {n_reported} {unit} reported",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
