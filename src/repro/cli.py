"""Command-line interface: discover CFDs in a CSV file.

Installed as the ``repro-discover`` console script::

    repro-discover data.csv --support 10 --algorithm fastcfd
    repro-discover data.csv --support 10 --constant-only --tableau
    repro-discover data.csv --support 10 --json
    repro-discover data.csv --support 10 --output rules.txt

The CSV's first row is taken as the header unless ``--no-header`` is given
(in which case attributes are named ``A0, A1, …``).  The discovered canonical
cover is printed one rule per line (optionally grouped into pattern tableaux,
or as a machine-readable JSON document with ``--json``) together with a short
summary on stderr.

The command is a thin shell over the unified discovery API: the flags are
packed into one :class:`repro.api.DiscoveryRequest` and executed through a
:class:`repro.api.Profiler`, so ``--constant-only`` with the default
``auto`` algorithm routes to a constant-only engine (CFDMiner) *before* any
variable CFDs are mined.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.api import RANKING_KEYS, REGISTRY, DiscoveryRequest, Profiler
from repro.exceptions import DiscoveryError
from repro.relational.io import read_csv
from repro.relational.relation import Relation


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-discover`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-discover",
        description="Discover minimal, k-frequent conditional functional "
        "dependencies (CFDs) in a CSV file.",
    )
    parser.add_argument("csv", type=Path, help="path of the CSV file to profile")
    parser.add_argument(
        "--support", "-k", type=int, default=1,
        help="support threshold k (default: 1)",
    )
    parser.add_argument(
        "--algorithm", "-a", choices=REGISTRY.choices(), default="auto",
        help="discovery algorithm (default: auto — the paper's guidance)",
    )
    parser.add_argument(
        "--max-lhs", type=int, default=None,
        help="maximum number of LHS attributes (default: unbounded)",
    )
    parser.add_argument(
        "--limit-rows", type=int, default=None,
        help="read at most this many data rows from the CSV",
    )
    parser.add_argument(
        "--no-header", action="store_true",
        help="the CSV has no header row; attributes are named A0, A1, ...",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV field delimiter (default: ',')"
    )
    parser.add_argument(
        "--constant-only", action="store_true",
        help="report only constant CFDs",
    )
    parser.add_argument(
        "--variable-only", action="store_true",
        help="report only variable CFDs",
    )
    parser.add_argument(
        "--tableau", action="store_true",
        help="group the rules into one pattern tableau per embedded FD",
    )
    parser.add_argument(
        "--rank-by", choices=list(RANKING_KEYS),
        default=None, help="rank the reported rules by an interest measure",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit rules and run statistics as machine-readable JSON",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=None,
        help="write the rules to this file instead of stdout",
    )
    return parser


def _peek_arity(path: Path, delimiter: str) -> int:
    """Number of fields of the first CSV record (quote-aware)."""
    with path.open(encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        first = next(reader, [])
    return len(first)


def _load_relation(args: argparse.Namespace) -> Relation:
    if args.no_header:
        # Peek at the first record to size the schema; csv handles quoted
        # fields that a naive split on the delimiter would miscount.
        arity = _peek_arity(args.csv, args.delimiter)
        names = [f"A{i}" for i in range(arity)]
        return read_csv(
            args.csv,
            has_header=False,
            attribute_names=names,
            delimiter=args.delimiter,
            limit=args.limit_rows,
        )
    return read_csv(args.csv, delimiter=args.delimiter, limit=args.limit_rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-discover`` command; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.constant_only and args.variable_only:
        parser.error("--constant-only and --variable-only are mutually exclusive")
    if not args.csv.exists():
        parser.error(f"no such file: {args.csv}")

    relation = _load_relation(args)
    try:
        request = DiscoveryRequest(
            min_support=args.support,
            algorithm=args.algorithm,
            max_lhs_size=args.max_lhs,
            constant_only=args.constant_only,
            variable_only=args.variable_only,
            rank_by=args.rank_by,
            tableau=args.tableau,
        )
        result = Profiler(relation).run(request)
    except DiscoveryError as exc:
        parser.error(str(exc))

    if args.rank_by is None:
        # Deterministic presentation order (ranked output keeps rank order).
        result.cfds = sorted(result.cfds, key=str)
    cfds = result.cfds

    if args.as_json:
        document = result.to_json_dict()
        if args.tableau:
            document["tableaux"] = [str(t) for t in result.tableaux()]
        text = json.dumps(document, indent=2, default=str)
        n_reported = len(document["rules"])
        unit = "rules"
    elif args.tableau:
        lines: List[str] = [str(tableau) for tableau in result.tableaux()]
        text = "\n".join(lines)
        n_reported = len(lines)
        unit = "tableaux"
    else:
        lines = [str(cfd) for cfd in cfds]
        text = "\n".join(lines)
        n_reported = len(lines)
        unit = "rules"

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + ("\n" if text else ""), encoding="utf-8")
    else:
        if text:
            print(text)
    print(
        f"# {result.summary()} -> {n_reported} {unit} reported",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
