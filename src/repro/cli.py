"""Command-line interface: discover CFDs in a CSV file.

Installed as the ``repro-discover`` console script::

    repro-discover data.csv --support 10 --algorithm fastcfd
    repro-discover data.csv --support 10 --constant-only --tableau
    repro-discover data.csv --support 10 --output rules.txt

The CSV's first row is taken as the header unless ``--no-header`` is given
(in which case attributes are named ``A0, A1, …``).  The discovered canonical
cover is printed one rule per line (optionally grouped into pattern tableaux)
together with a short summary on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.discovery import ALGORITHMS, discover
from repro.core.measures import rank_by_interest
from repro.core.tableau import group_into_tableaux
from repro.relational.io import read_csv
from repro.relational.relation import Relation


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-discover`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-discover",
        description="Discover minimal, k-frequent conditional functional "
        "dependencies (CFDs) in a CSV file.",
    )
    parser.add_argument("csv", type=Path, help="path of the CSV file to profile")
    parser.add_argument(
        "--support", "-k", type=int, default=1,
        help="support threshold k (default: 1)",
    )
    parser.add_argument(
        "--algorithm", "-a", choices=ALGORITHMS, default="auto",
        help="discovery algorithm (default: auto — the paper's guidance)",
    )
    parser.add_argument(
        "--max-lhs", type=int, default=None,
        help="maximum number of LHS attributes (default: unbounded)",
    )
    parser.add_argument(
        "--limit-rows", type=int, default=None,
        help="read at most this many data rows from the CSV",
    )
    parser.add_argument(
        "--no-header", action="store_true",
        help="the CSV has no header row; attributes are named A0, A1, ...",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV field delimiter (default: ',')"
    )
    parser.add_argument(
        "--constant-only", action="store_true",
        help="report only constant CFDs",
    )
    parser.add_argument(
        "--variable-only", action="store_true",
        help="report only variable CFDs",
    )
    parser.add_argument(
        "--tableau", action="store_true",
        help="group the rules into one pattern tableau per embedded FD",
    )
    parser.add_argument(
        "--rank-by", choices=["support", "confidence", "conviction", "chi_squared"],
        default=None, help="rank the reported rules by an interest measure",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=None,
        help="write the rules to this file instead of stdout",
    )
    return parser


def _load_relation(args: argparse.Namespace) -> Relation:
    if args.no_header:
        # Peek at the first line to size the schema.
        with args.csv.open(encoding="utf-8") as handle:
            first = handle.readline()
        arity = len(first.rstrip("\n").split(args.delimiter))
        names = [f"A{i}" for i in range(arity)]
        return read_csv(
            args.csv,
            has_header=False,
            attribute_names=names,
            delimiter=args.delimiter,
            limit=args.limit_rows,
        )
    return read_csv(args.csv, delimiter=args.delimiter, limit=args.limit_rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-discover`` command; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.constant_only and args.variable_only:
        parser.error("--constant-only and --variable-only are mutually exclusive")
    if not args.csv.exists():
        parser.error(f"no such file: {args.csv}")

    relation = _load_relation(args)
    algorithm = "cfdminer" if args.constant_only and args.algorithm == "auto" else args.algorithm
    result = discover(
        relation, args.support, algorithm=algorithm, max_lhs_size=args.max_lhs
    )

    cfds = result.cfds
    if args.constant_only:
        cfds = [cfd for cfd in cfds if cfd.is_constant]
    if args.variable_only:
        cfds = [cfd for cfd in cfds if cfd.is_variable]
    if args.rank_by:
        cfds = rank_by_interest(relation, cfds, key=args.rank_by)
    else:
        cfds = sorted(cfds, key=str)

    if args.tableau:
        lines: List[str] = [str(tableau) for tableau in group_into_tableaux(cfds)]
    else:
        lines = [str(cfd) for cfd in cfds]

    text = "\n".join(lines)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + ("\n" if text else ""), encoding="utf-8")
    else:
        if text:
            print(text)
    print(
        f"# {result.summary()} -> {len(lines)} "
        f"{'tableaux' if args.tableau else 'rules'} reported",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
