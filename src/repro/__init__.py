"""repro — a reproduction of "Discovering Conditional Functional Dependencies".

The package implements the three discovery algorithms of Fan, Geerts, Li and
Xiong (ICDE 2009 / TKDE 2011) — CFDMiner, CTANE and FastCFD/NaiveFast —
together with every substrate they rely on: a relational storage layer,
free/closed item-set mining, classical FD discovery (TANE, FastFD), synthetic
workload generators, a CFD-based data-cleaning layer and an experiment harness
that regenerates the paper's figures.

Quickstart
----------
The canonical entry point is the unified discovery API in :mod:`repro.api`:
build a :class:`~repro.api.DiscoveryRequest`, open a
:class:`~repro.api.Profiler` session over a relation, and run.  The session
caches the expensive per-relation structures (encodings, item-set mining,
difference-set indexes), so sweeping the support threshold — or re-running
after sampling — skips recomputation:

>>> from repro import DiscoveryRequest, Profiler, Relation
>>> r = Relation.from_rows(
...     ["CC", "AC", "CT"],
...     [
...         ("01", "908", "MH"),
...         ("01", "908", "MH"),
...         ("01", "212", "NYC"),
...         ("44", "131", "EDI"),
...         ("44", "131", "EDI"),
...     ],
... )
>>> profiler = Profiler(r)
>>> result = profiler.run(DiscoveryRequest(min_support=2, algorithm="fastcfd"))
>>> any(str(cfd) == "([AC] -> CT, (908 || MH))" for cfd in result.cfds)
True
>>> sweep = profiler.run(DiscoveryRequest(min_support=3, algorithm="fastcfd"))
>>> sweep.n_cfds <= result.n_cfds  # higher threshold, smaller cover
True

The one-shot :func:`repro.discover` shim from the seed API keeps working:

>>> repro_result = discover(r, min_support=2, algorithm="fastcfd")
>>> sorted(map(str, repro_result.cfds)) == sorted(map(str, result.cfds))
True

New algorithms plug in through the registry: subclass
:class:`~repro.api.DiscoveryAlgorithm`, declare
:class:`~repro.api.AlgorithmCapabilities`, and decorate with
:func:`~repro.api.register_algorithm`; ``algorithm="auto"`` dispatch is
driven by the declared capabilities (the paper's Section 8 guidance).
"""

# NOTE: repro.core must initialise before repro.api is imported directly —
# core.pattern / core.cfd load first, then core.discovery pulls repro.api in
# at a point where every module the api needs is already in sys.modules.
from repro.core.cfd import CFD, ConstantCFD, VariableCFD, cfd_from_fd
from repro.api import (
    AlgorithmCapabilities,
    AlgorithmRegistry,
    AlgorithmStats,
    DiscoveryAlgorithm,
    DiscoveryRequest,
    Profiler,
    REGISTRY,
    register_algorithm,
)
from repro.api import execute as execute_request
from repro.core.cfdminer import CFDMiner, discover_constant_cfds
from repro.core.ctane import CTane, discover_cfds_ctane
from repro.core.discovery import DiscoveryResult, discover
from repro.core.fastcfd import FastCFD, NaiveFast, discover_cfds_fastcfd
from repro.core.measures import confidence, measures, rank_by_interest
from repro.core.minimality import canonical_cover, is_left_reduced, is_minimal
from repro.core.pattern import WILDCARD, PatternTuple
from repro.core.sampling import discover_with_sampling, stratified_sample
from repro.core.tableau import TableauCFD, group_into_tableaux
from repro.core.validation import holds, satisfies, support, support_count, violations
from repro.fd.fd import FD
from repro.fd.fastfd import FastFD as FastFDAlgorithm
from repro.fd.tane import Tane
from repro.relational.io import read_csv, write_csv
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serve import CacheStore, DiscoveryService, SessionPool, relation_fingerprint

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational substrate
    "Schema",
    "Relation",
    "read_csv",
    "write_csv",
    # CFD model
    "WILDCARD",
    "PatternTuple",
    "CFD",
    "ConstantCFD",
    "VariableCFD",
    "cfd_from_fd",
    "satisfies",
    "holds",
    "support",
    "support_count",
    "violations",
    "is_minimal",
    "is_left_reduced",
    "canonical_cover",
    # unified discovery API (the canonical front door)
    "AlgorithmCapabilities",
    "AlgorithmRegistry",
    "AlgorithmStats",
    "DiscoveryAlgorithm",
    "DiscoveryRequest",
    "Profiler",
    "REGISTRY",
    "execute_request",
    "register_algorithm",
    # discovery algorithms
    "CFDMiner",
    "discover_constant_cfds",
    "CTane",
    "discover_cfds_ctane",
    "FastCFD",
    "NaiveFast",
    "discover_cfds_fastcfd",
    "discover",
    "DiscoveryResult",
    # extensions: tableaux, interest measures, sampling-based discovery
    "TableauCFD",
    "group_into_tableaux",
    "confidence",
    "measures",
    "rank_by_interest",
    "stratified_sample",
    "discover_with_sampling",
    # serving layer: session pool, request dedup/batching
    "DiscoveryService",
    "CacheStore",
    "SessionPool",
    "relation_fingerprint",
    # FD baselines
    "FD",
    "Tane",
    "FastFDAlgorithm",
]
